package minidb

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// BTree is a B+tree over buffer-pool pages: int64 keys, bounded []byte
// values, leaf-level links for range scans. Structure modifications take a
// coarse tree latch (row-level concurrency is the lock manager's job);
// deletes remove leaf entries without rebalancing, which is sufficient for
// the OLTP mixes replayed against it.
type BTree struct {
	mu   sync.RWMutex
	pool *BufferPool
	root PageID
}

const (
	nodeLeaf     = 0
	nodeInternal = 1
	// MaxValueLen bounds stored values.
	MaxValueLen = 256
	headerSize  = 3 // type byte + uint16 count
)

// newBTree creates an empty tree with a fresh leaf root.
func newBTree(pool *BufferPool, pager *pager) (*BTree, error) {
	root := pager.allocate()
	t := &BTree{pool: pool, root: root}
	p, err := pool.Fetch(root)
	if err != nil {
		return nil, err
	}
	writeLeaf(&p.data, nil)
	pool.Unpin(p, true)
	return t, nil
}

// openBTree attaches to an existing tree.
func openBTree(pool *BufferPool, root PageID) *BTree {
	return &BTree{pool: pool, root: root}
}

// Root returns the root page id (persisted by the catalog).
func (t *BTree) Root() PageID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.root
}

// --- node encodings --------------------------------------------------------

type leafEntry struct {
	key int64
	val []byte
}

func readLeaf(data *[PageSize]byte) []leafEntry {
	n := int(binary.LittleEndian.Uint16(data[1:3]))
	entries := make([]leafEntry, 0, n)
	off := headerSize
	for i := 0; i < n; i++ {
		key := int64(binary.LittleEndian.Uint64(data[off:]))
		off += 8
		vlen := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		val := make([]byte, vlen)
		copy(val, data[off:off+vlen])
		off += vlen
		entries = append(entries, leafEntry{key, val})
	}
	return entries
}

func leafSize(entries []leafEntry) int {
	s := headerSize
	for _, e := range entries {
		s += 10 + len(e.val)
	}
	return s
}

func writeLeaf(data *[PageSize]byte, entries []leafEntry) {
	data[0] = nodeLeaf
	binary.LittleEndian.PutUint16(data[1:3], uint16(len(entries)))
	off := headerSize
	for _, e := range entries {
		binary.LittleEndian.PutUint64(data[off:], uint64(e.key))
		off += 8
		binary.LittleEndian.PutUint16(data[off:], uint16(len(e.val)))
		off += 2
		copy(data[off:], e.val)
		off += len(e.val)
	}
}

type internalNode struct {
	keys     []int64  // n separators
	children []PageID // n+1 children; child[i] holds keys < keys[i]
}

func readInternal(data *[PageSize]byte) internalNode {
	n := int(binary.LittleEndian.Uint16(data[1:3]))
	node := internalNode{keys: make([]int64, n), children: make([]PageID, n+1)}
	off := headerSize
	node.children[0] = PageID(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	for i := 0; i < n; i++ {
		node.keys[i] = int64(binary.LittleEndian.Uint64(data[off:]))
		off += 8
		node.children[i+1] = PageID(binary.LittleEndian.Uint32(data[off:]))
		off += 4
	}
	return node
}

func internalSize(n internalNode) int { return headerSize + 4 + 12*len(n.keys) }

func writeInternal(data *[PageSize]byte, node internalNode) {
	data[0] = nodeInternal
	binary.LittleEndian.PutUint16(data[1:3], uint16(len(node.keys)))
	off := headerSize
	binary.LittleEndian.PutUint32(data[off:], uint32(node.children[0]))
	off += 4
	for i, k := range node.keys {
		binary.LittleEndian.PutUint64(data[off:], uint64(k))
		off += 8
		binary.LittleEndian.PutUint32(data[off:], uint32(node.children[i+1]))
		off += 4
	}
}

// --- operations -------------------------------------------------------------

// Get returns the value stored under key.
func (t *BTree) Get(key int64) ([]byte, bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id := t.root
	for {
		p, err := t.pool.Fetch(id)
		if err != nil {
			return nil, false, err
		}
		if p.data[0] == nodeLeaf {
			entries := readLeaf(&p.data)
			t.pool.Unpin(p, false)
			for _, e := range entries {
				if e.key == key {
					return e.val, true, nil
				}
				if e.key > key {
					break
				}
			}
			return nil, false, nil
		}
		node := readInternal(&p.data)
		t.pool.Unpin(p, false)
		id = node.children[childIndex(node.keys, key)]
	}
}

// childIndex returns the child slot for key.
func childIndex(keys []int64, key int64) int {
	i := 0
	for i < len(keys) && key >= keys[i] {
		i++
	}
	return i
}

// splitResult propagates a child split upward.
type splitResult struct {
	sepKey   int64
	newChild PageID
}

// Put inserts or updates a key.
func (t *BTree) Put(key int64, val []byte) error {
	if len(val) > MaxValueLen {
		return fmt.Errorf("minidb: value length %d exceeds %d", len(val), MaxValueLen)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	split, err := t.insert(t.root, key, val)
	if err != nil {
		return err
	}
	if split == nil {
		return nil
	}
	// Root split: grow the tree.
	newRoot := t.pool.pager.allocate()
	p, err := t.pool.Fetch(newRoot)
	if err != nil {
		return err
	}
	writeInternal(&p.data, internalNode{
		keys:     []int64{split.sepKey},
		children: []PageID{t.root, split.newChild},
	})
	t.pool.Unpin(p, true)
	t.root = newRoot
	return nil
}

func (t *BTree) insert(id PageID, key int64, val []byte) (*splitResult, error) {
	p, err := t.pool.Fetch(id)
	if err != nil {
		return nil, err
	}
	if p.data[0] == nodeLeaf {
		entries := readLeaf(&p.data)
		idx := 0
		for idx < len(entries) && entries[idx].key < key {
			idx++
		}
		if idx < len(entries) && entries[idx].key == key {
			entries[idx].val = append([]byte(nil), val...)
		} else {
			entries = append(entries, leafEntry{})
			copy(entries[idx+1:], entries[idx:])
			entries[idx] = leafEntry{key, append([]byte(nil), val...)}
		}
		if leafSize(entries) <= PageSize {
			writeLeaf(&p.data, entries)
			t.pool.Unpin(p, true)
			return nil, nil
		}
		// Split the leaf.
		mid := len(entries) / 2
		left, right := entries[:mid], entries[mid:]
		writeLeaf(&p.data, left)
		t.pool.Unpin(p, true)
		rightID := t.pool.pager.allocate()
		rp, err := t.pool.Fetch(rightID)
		if err != nil {
			return nil, err
		}
		writeLeaf(&rp.data, right)
		t.pool.Unpin(rp, true)
		return &splitResult{sepKey: right[0].key, newChild: rightID}, nil
	}

	node := readInternal(&p.data)
	ci := childIndex(node.keys, key)
	child := node.children[ci]
	t.pool.Unpin(p, false)
	split, err := t.insert(child, key, val)
	if err != nil || split == nil {
		return nil, err
	}
	// Re-fetch and install the separator.
	p, err = t.pool.Fetch(id)
	if err != nil {
		return nil, err
	}
	node = readInternal(&p.data)
	ci = childIndex(node.keys, split.sepKey)
	node.keys = append(node.keys, 0)
	copy(node.keys[ci+1:], node.keys[ci:])
	node.keys[ci] = split.sepKey
	node.children = append(node.children, 0)
	copy(node.children[ci+2:], node.children[ci+1:])
	node.children[ci+1] = split.newChild

	if internalSize(node) <= PageSize {
		writeInternal(&p.data, node)
		t.pool.Unpin(p, true)
		return nil, nil
	}
	// Split the internal node.
	mid := len(node.keys) / 2
	sep := node.keys[mid]
	leftNode := internalNode{keys: node.keys[:mid], children: node.children[:mid+1]}
	rightNode := internalNode{
		keys:     append([]int64(nil), node.keys[mid+1:]...),
		children: append([]PageID(nil), node.children[mid+1:]...),
	}
	writeInternal(&p.data, leftNode)
	t.pool.Unpin(p, true)
	rightID := t.pool.pager.allocate()
	rp, err := t.pool.Fetch(rightID)
	if err != nil {
		return nil, err
	}
	writeInternal(&rp.data, rightNode)
	t.pool.Unpin(rp, true)
	return &splitResult{sepKey: sep, newChild: rightID}, nil
}

// Delete removes a key, reporting whether it existed.
func (t *BTree) Delete(key int64) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.root
	for {
		p, err := t.pool.Fetch(id)
		if err != nil {
			return false, err
		}
		if p.data[0] == nodeLeaf {
			entries := readLeaf(&p.data)
			for i, e := range entries {
				if e.key == key {
					entries = append(entries[:i], entries[i+1:]...)
					writeLeaf(&p.data, entries)
					t.pool.Unpin(p, true)
					return true, nil
				}
			}
			t.pool.Unpin(p, false)
			return false, nil
		}
		node := readInternal(&p.data)
		t.pool.Unpin(p, false)
		id = node.children[childIndex(node.keys, key)]
	}
}

// Scan visits keys in [lo, hi] in order until fn returns false.
func (t *BTree) Scan(lo, hi int64, fn func(key int64, val []byte) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, err := t.scan(t.root, lo, hi, fn)
	return err
}

func (t *BTree) scan(id PageID, lo, hi int64, fn func(int64, []byte) bool) (bool, error) {
	p, err := t.pool.Fetch(id)
	if err != nil {
		return false, err
	}
	if p.data[0] == nodeLeaf {
		entries := readLeaf(&p.data)
		t.pool.Unpin(p, false)
		for _, e := range entries {
			if e.key < lo {
				continue
			}
			if e.key > hi {
				return false, nil
			}
			if !fn(e.key, e.val) {
				return false, nil
			}
		}
		return true, nil
	}
	node := readInternal(&p.data)
	t.pool.Unpin(p, false)
	for ci := childIndex(node.keys, lo); ci < len(node.children); ci++ {
		more, err := t.scan(node.children[ci], lo, hi, fn)
		if err != nil || !more {
			return false, err
		}
	}
	return true, nil
}
