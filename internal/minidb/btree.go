package minidb

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/obs"
)

// BTree is a B+tree over buffer-pool pages: int64 keys, bounded []byte
// values. Concurrency follows a two-level latch scheme:
//
//   - The tree latch (t.mu) is held *shared* by every read and by writes
//     that stay in place, and *exclusive* only for structure modifications
//     (splits, root growth). While any shared holder is descending, no page
//     can change type, move, or have its key range altered — so descents
//     need no lock coupling across levels.
//   - Each page frame carries a read-write latch guarding its bytes: node
//     readers hold it shared, in-place leaf writers hold it exclusive. This
//     is what lets point reads of one leaf run concurrently with updates to
//     another under the same shared tree latch.
//
// A writer first tries the fast path (shared tree latch + exclusive leaf
// latch); only when the leaf would overflow does it escalate to the
// exclusive tree latch and run the recursive split insert. Deletes never
// rebalance, so they always take the fast path. Page latches are always
// released before Unpin — the pool takes page latches while holding an
// instance mutex (FlushAll), so the reverse order would deadlock (see
// DESIGN.md, latch ordering).
type BTree struct {
	mu   sync.RWMutex
	pool *BufferPool
	root PageID
	// smo collects the pages written by the in-flight structural
	// modification (split, root growth). They stay pinned — and therefore
	// unevictable and invisible to the cleaner — until onStructural has
	// logged their images, so no post-split page can reach disk before the
	// redo describing the whole split is in the log. Guarded by the
	// exclusive tree latch.
	smo []*page
	// onStructural, when set, logs physical page images (and the possibly
	// changed root) for a completed structural modification. The DB wires
	// it to WAL page-image records.
	onStructural func(pages []*page, root PageID) error
	// latchWaits, when set, counts contended exclusive tree-latch
	// escalations (split path). Nil — the default — keeps the plain Lock.
	latchWaits obs.Counter
}

const (
	nodeLeaf     = 0
	nodeInternal = 1
	// MaxValueLen bounds stored values.
	MaxValueLen = 256
	headerSize  = 3 // type byte + uint16 count
	// maxDepth bounds tree descents. A valid tree at this fanout never
	// exceeds single digits; the guard turns cycles in corrupt trees
	// (crafted WAL bytes, torn pages) into errors instead of hangs.
	maxDepth = 64
)

// errCorrupt is returned when a descent meets a structurally impossible
// tree (a cycle, or deeper than any valid tree can be).
var errCorrupt = fmt.Errorf("minidb: corrupt tree (descent exceeded %d levels)", maxDepth)

// newBTree creates an empty tree with a fresh leaf root.
func newBTree(pool *BufferPool, pager *pager) (*BTree, error) {
	root := pager.allocate()
	t := &BTree{pool: pool, root: root}
	p, err := pool.Fetch(root)
	if err != nil {
		return nil, err
	}
	p.latch.Lock()
	writeLeaf(&p.data, nil)
	p.latch.Unlock()
	pool.Unpin(p, true)
	return t, nil
}

// openBTree attaches to an existing tree.
func openBTree(pool *BufferPool, root PageID) *BTree {
	return &BTree{pool: pool, root: root}
}

// Root returns the root page id (persisted by the catalog).
func (t *BTree) Root() PageID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.root
}

// --- node encodings --------------------------------------------------------

type leafEntry struct {
	key int64
	val []byte
}

// readLeaf decodes a leaf. Decoding is bounds-checked — a garbage page
// (torn write, crafted WAL image) yields the entries that fit, never a
// panic; on a valid page the checks are no-ops.
func readLeaf(data *[PageSize]byte) []leafEntry {
	n := int(binary.LittleEndian.Uint16(data[1:3]))
	entries := make([]leafEntry, 0, n)
	off := headerSize
	for i := 0; i < n; i++ {
		if off+10 > PageSize {
			break
		}
		key := int64(binary.LittleEndian.Uint64(data[off:]))
		off += 8
		vlen := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if off+vlen > PageSize {
			break
		}
		val := make([]byte, vlen)
		copy(val, data[off:off+vlen])
		off += vlen
		entries = append(entries, leafEntry{key, val})
	}
	return entries
}

// leafFind searches a leaf in place, copying out only the matching value —
// the point-read path allocates one value instead of the whole page's worth.
func leafFind(data *[PageSize]byte, key int64) ([]byte, bool) {
	n := int(binary.LittleEndian.Uint16(data[1:3]))
	off := headerSize
	for i := 0; i < n; i++ {
		if off+10 > PageSize {
			return nil, false
		}
		k := int64(binary.LittleEndian.Uint64(data[off:]))
		off += 8
		vlen := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if off+vlen > PageSize {
			return nil, false
		}
		if k == key {
			return append([]byte(nil), data[off:off+vlen]...), true
		}
		if k > key {
			return nil, false
		}
		off += vlen
	}
	return nil, false
}

func leafSize(entries []leafEntry) int {
	s := headerSize
	for _, e := range entries {
		s += 10 + len(e.val)
	}
	return s
}

func writeLeaf(data *[PageSize]byte, entries []leafEntry) {
	data[0] = nodeLeaf
	binary.LittleEndian.PutUint16(data[1:3], uint16(len(entries)))
	off := headerSize
	for _, e := range entries {
		binary.LittleEndian.PutUint64(data[off:], uint64(e.key))
		off += 8
		binary.LittleEndian.PutUint16(data[off:], uint16(len(e.val)))
		off += 2
		copy(data[off:], e.val)
		off += len(e.val)
	}
}

type internalNode struct {
	keys     []int64  // n separators
	children []PageID // n+1 children; child[i] holds keys < keys[i]
}

// maxInternalKeys is the separator count that fits a page; a larger stored
// count is corruption and is clamped rather than walked off the page.
const maxInternalKeys = (PageSize - headerSize - 4) / 12

func readInternal(data *[PageSize]byte) internalNode {
	n := int(binary.LittleEndian.Uint16(data[1:3]))
	if n > maxInternalKeys {
		n = maxInternalKeys
	}
	node := internalNode{keys: make([]int64, n), children: make([]PageID, n+1)}
	off := headerSize
	node.children[0] = PageID(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	for i := 0; i < n; i++ {
		node.keys[i] = int64(binary.LittleEndian.Uint64(data[off:]))
		off += 8
		node.children[i+1] = PageID(binary.LittleEndian.Uint32(data[off:]))
		off += 4
	}
	return node
}

// internalChild picks the descent child for key without materializing the
// node.
func internalChild(data *[PageSize]byte, key int64) PageID {
	n := int(binary.LittleEndian.Uint16(data[1:3]))
	if n > maxInternalKeys {
		n = maxInternalKeys
	}
	off := headerSize
	child := PageID(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	for i := 0; i < n; i++ {
		k := int64(binary.LittleEndian.Uint64(data[off:]))
		off += 8
		if key < k {
			return child
		}
		child = PageID(binary.LittleEndian.Uint32(data[off:]))
		off += 4
	}
	return child
}

func internalSize(n internalNode) int { return headerSize + 4 + 12*len(n.keys) }

func writeInternal(data *[PageSize]byte, node internalNode) {
	data[0] = nodeInternal
	binary.LittleEndian.PutUint16(data[1:3], uint16(len(node.keys)))
	off := headerSize
	binary.LittleEndian.PutUint32(data[off:], uint32(node.children[0]))
	off += 4
	for i, k := range node.keys {
		binary.LittleEndian.PutUint64(data[off:], uint64(k))
		off += 8
		binary.LittleEndian.PutUint32(data[off:], uint32(node.children[i+1]))
		off += 4
	}
}

// --- operations -------------------------------------------------------------

// Get returns the value stored under key.
func (t *BTree) Get(key int64) ([]byte, bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id := t.root
	for depth := 0; ; depth++ {
		if depth >= maxDepth {
			return nil, false, errCorrupt
		}
		p, err := t.pool.Fetch(id)
		if err != nil {
			return nil, false, err
		}
		p.latch.RLock()
		if p.data[0] == nodeLeaf {
			val, ok := leafFind(&p.data, key)
			p.latch.RUnlock()
			t.pool.Unpin(p, false)
			return val, ok, nil
		}
		next := internalChild(&p.data, key)
		p.latch.RUnlock()
		t.pool.Unpin(p, false)
		id = next
	}
}

// childIndex returns the child slot for key.
func childIndex(keys []int64, key int64) int {
	i := 0
	for i < len(keys) && key >= keys[i] {
		i++
	}
	return i
}

// splitResult propagates a child split upward.
type splitResult struct {
	sepKey   int64
	newChild PageID
}

// Put inserts or updates a key. The fast path runs under the shared tree
// latch with an exclusive latch on the target leaf only; a leaf overflow
// escalates to the exclusive tree latch for the split.
func (t *BTree) Put(key int64, val []byte) error {
	if len(val) > MaxValueLen {
		return fmt.Errorf("minidb: value length %d exceeds %d", len(val), MaxValueLen)
	}
	done, err := t.putInPlace(key, val)
	if done || err != nil {
		return err
	}
	if t.latchWaits == nil {
		t.mu.Lock()
	} else if !t.mu.TryLock() {
		t.latchWaits.Add(1)
		t.mu.Lock()
	}
	defer t.mu.Unlock()
	defer t.releaseSMO()
	split, err := t.insert(t.root, key, val, 0)
	if err != nil {
		return err
	}
	if split != nil {
		// Root split: grow the tree.
		newRoot := t.pool.pager.allocate()
		p, err := t.pool.Fetch(newRoot)
		if err != nil {
			return err
		}
		p.latch.Lock()
		writeInternal(&p.data, internalNode{
			keys:     []int64{split.sepKey},
			children: []PageID{t.root, split.newChild},
		})
		p.latch.Unlock()
		t.smo = append(t.smo, p)
		t.root = newRoot
	}
	if t.onStructural != nil && len(t.smo) > 0 {
		// Log the whole split (every written page, plus the root) before
		// releaseSMO unpins the pages and makes them flushable.
		if err := t.onStructural(t.smo, t.root); err != nil {
			return err
		}
	}
	return nil
}

// releaseSMO unpins the pages the structural modification wrote, marking
// them dirty. Caller holds the exclusive tree latch.
func (t *BTree) releaseSMO() {
	for _, p := range t.smo {
		t.pool.Unpin(p, true)
	}
	t.smo = t.smo[:0]
}

// putInPlace attempts the in-place leaf update under the shared tree latch.
// It reports done=false (without modifying anything) when the leaf would
// overflow and the caller must escalate to a split.
func (t *BTree) putInPlace(key int64, val []byte) (done bool, err error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id := t.root
	for depth := 0; ; depth++ {
		if depth >= maxDepth {
			return false, errCorrupt
		}
		p, err := t.pool.Fetch(id)
		if err != nil {
			return false, err
		}
		p.latch.RLock()
		if p.data[0] != nodeLeaf {
			next := internalChild(&p.data, key)
			p.latch.RUnlock()
			t.pool.Unpin(p, false)
			id = next
			continue
		}
		p.latch.RUnlock()
		// Re-latch exclusive. The page cannot change type or key range in
		// between: both would require the exclusive tree latch, blocked by
		// our shared hold. Another in-place writer may slip in, which is
		// fine — the size check below sees the latest contents.
		p.latch.Lock()
		entries := readLeaf(&p.data)
		idx := 0
		for idx < len(entries) && entries[idx].key < key {
			idx++
		}
		if idx < len(entries) && entries[idx].key == key {
			entries[idx].val = append([]byte(nil), val...)
		} else {
			entries = append(entries, leafEntry{})
			copy(entries[idx+1:], entries[idx:])
			entries[idx] = leafEntry{key, append([]byte(nil), val...)}
		}
		if leafSize(entries) > PageSize {
			p.latch.Unlock()
			t.pool.Unpin(p, false)
			return false, nil
		}
		writeLeaf(&p.data, entries)
		p.latch.Unlock()
		t.pool.Unpin(p, true)
		return true, nil
	}
}

// insert runs under the exclusive tree latch. Other tree operations are
// excluded, but checkpoints (FlushAll) may still read pinned pages under
// their shared latches, so page writes take the exclusive page latch.
// Every page it writes is appended to t.smo still pinned (Put unpins them
// after the structural hook has logged their images); read-only descents
// unpin immediately.
func (t *BTree) insert(id PageID, key int64, val []byte, depth int) (*splitResult, error) {
	if depth >= maxDepth {
		return nil, errCorrupt
	}
	p, err := t.pool.Fetch(id)
	if err != nil {
		return nil, err
	}
	if p.data[0] == nodeLeaf {
		entries := readLeaf(&p.data)
		idx := 0
		for idx < len(entries) && entries[idx].key < key {
			idx++
		}
		if idx < len(entries) && entries[idx].key == key {
			entries[idx].val = append([]byte(nil), val...)
		} else {
			entries = append(entries, leafEntry{})
			copy(entries[idx+1:], entries[idx:])
			entries[idx] = leafEntry{key, append([]byte(nil), val...)}
		}
		if leafSize(entries) <= PageSize {
			p.latch.Lock()
			writeLeaf(&p.data, entries)
			p.latch.Unlock()
			t.pool.Unpin(p, true)
			return nil, nil
		}
		// Split the leaf.
		mid := len(entries) / 2
		left, right := entries[:mid], entries[mid:]
		p.latch.Lock()
		writeLeaf(&p.data, left)
		p.latch.Unlock()
		t.smo = append(t.smo, p)
		rightID := t.pool.pager.allocate()
		rp, err := t.pool.Fetch(rightID)
		if err != nil {
			return nil, err
		}
		rp.latch.Lock()
		writeLeaf(&rp.data, right)
		rp.latch.Unlock()
		t.smo = append(t.smo, rp)
		return &splitResult{sepKey: right[0].key, newChild: rightID}, nil
	}

	node := readInternal(&p.data)
	ci := childIndex(node.keys, key)
	child := node.children[ci]
	t.pool.Unpin(p, false)
	split, err := t.insert(child, key, val, depth+1)
	if err != nil || split == nil {
		return nil, err
	}
	// Re-fetch and install the separator.
	p, err = t.pool.Fetch(id)
	if err != nil {
		return nil, err
	}
	node = readInternal(&p.data)
	ci = childIndex(node.keys, split.sepKey)
	node.keys = append(node.keys, 0)
	copy(node.keys[ci+1:], node.keys[ci:])
	node.keys[ci] = split.sepKey
	node.children = append(node.children, 0)
	copy(node.children[ci+2:], node.children[ci+1:])
	node.children[ci+1] = split.newChild

	if internalSize(node) <= PageSize {
		p.latch.Lock()
		writeInternal(&p.data, node)
		p.latch.Unlock()
		t.smo = append(t.smo, p)
		return nil, nil
	}
	// Split the internal node.
	mid := len(node.keys) / 2
	sep := node.keys[mid]
	leftNode := internalNode{keys: node.keys[:mid], children: node.children[:mid+1]}
	rightNode := internalNode{
		keys:     append([]int64(nil), node.keys[mid+1:]...),
		children: append([]PageID(nil), node.children[mid+1:]...),
	}
	p.latch.Lock()
	writeInternal(&p.data, leftNode)
	p.latch.Unlock()
	t.smo = append(t.smo, p)
	rightID := t.pool.pager.allocate()
	rp, err := t.pool.Fetch(rightID)
	if err != nil {
		return nil, err
	}
	rp.latch.Lock()
	writeInternal(&rp.data, rightNode)
	rp.latch.Unlock()
	t.smo = append(t.smo, rp)
	return &splitResult{sepKey: sep, newChild: rightID}, nil
}

// Delete removes a key, reporting whether it existed. Deletes only ever
// shrink a leaf in place (no rebalancing), so the fast path is the only
// path: shared tree latch, exclusive latch on the target leaf.
func (t *BTree) Delete(key int64) (bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id := t.root
	for depth := 0; ; depth++ {
		if depth >= maxDepth {
			return false, errCorrupt
		}
		p, err := t.pool.Fetch(id)
		if err != nil {
			return false, err
		}
		p.latch.RLock()
		if p.data[0] != nodeLeaf {
			next := internalChild(&p.data, key)
			p.latch.RUnlock()
			t.pool.Unpin(p, false)
			id = next
			continue
		}
		p.latch.RUnlock()
		p.latch.Lock()
		entries := readLeaf(&p.data)
		for i, e := range entries {
			if e.key == key {
				entries = append(entries[:i], entries[i+1:]...)
				writeLeaf(&p.data, entries)
				p.latch.Unlock()
				t.pool.Unpin(p, true)
				return true, nil
			}
		}
		p.latch.Unlock()
		t.pool.Unpin(p, false)
		return false, nil
	}
}

// Scan visits keys in [lo, hi] in order until fn returns false.
func (t *BTree) Scan(lo, hi int64, fn func(key int64, val []byte) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, err := t.scan(t.root, lo, hi, fn, 0)
	return err
}

func (t *BTree) scan(id PageID, lo, hi int64, fn func(int64, []byte) bool, depth int) (bool, error) {
	if depth >= maxDepth {
		return false, errCorrupt
	}
	p, err := t.pool.Fetch(id)
	if err != nil {
		return false, err
	}
	p.latch.RLock()
	if p.data[0] == nodeLeaf {
		entries := readLeaf(&p.data)
		p.latch.RUnlock()
		t.pool.Unpin(p, false)
		for _, e := range entries {
			if e.key < lo {
				continue
			}
			if e.key > hi {
				return false, nil
			}
			if !fn(e.key, e.val) {
				return false, nil
			}
		}
		return true, nil
	}
	node := readInternal(&p.data)
	p.latch.RUnlock()
	t.pool.Unpin(p, false)
	for ci := childIndex(node.keys, lo); ci < len(node.children); ci++ {
		more, err := t.scan(node.children[ci], lo, hi, fn, depth+1)
		if err != nil || !more {
			return false, err
		}
	}
	return true, nil
}
