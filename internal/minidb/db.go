package minidb

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/knobs"
)

// Config assembles the engine's tunables — each field mirrors the MySQL
// knob the paper tunes.
type Config struct {
	// Dir is the database directory (data file, WAL, catalog).
	Dir string
	// BufferPoolBytes sizes the buffer pool (innodb_buffer_pool_size).
	BufferPoolBytes int64
	// BufferPoolInstances splits the pool into independently latched
	// instances (innodb_buffer_pool_instances; values < 1 mean one).
	BufferPoolInstances int
	// OldBlocksPct is the LRU old-sublist share (innodb_old_blocks_pct).
	OldBlocksPct int
	// LRUScanDepth is the page cleaner scan depth (innodb_lru_scan_depth).
	LRUScanDepth int
	// IOCapacity caps cleaner writes/second (innodb_io_capacity).
	IOCapacity int
	// CleanerInterval is the cleaner period (0 disables it).
	CleanerInterval time.Duration
	// WAL tunes the redo log.
	WAL WALConfig
	// SpinWaitDelay / SyncSpinLoops tune lock acquisition.
	SpinWaitDelay int
	SyncSpinLoops int
	// ThreadConcurrency caps concurrently executing operations
	// (innodb_thread_concurrency; 0 = unlimited).
	ThreadConcurrency int
	// TableOpenCache bounds cached table handles (table_open_cache).
	TableOpenCache int
}

// DefaultTestConfig returns a small configuration suitable for tests.
func DefaultTestConfig(dir string) Config {
	return Config{
		Dir:                 dir,
		BufferPoolBytes:     256 * PageSize,
		BufferPoolInstances: 4,
		OldBlocksPct:        37,
		LRUScanDepth:        64,
		IOCapacity:          2000,
		WAL:                 WALConfig{BufferBytes: 1 << 16, Policy: FlushEachCommit},
		SyncSpinLoops:       30,
		SpinWaitDelay:       6,
		TableOpenCache:      64,
	}
}

// ConfigFromKnobs maps a native configuration over a knob subspace onto
// engine parameters; knobs the engine does not model are ignored.
func ConfigFromKnobs(dir string, space *knobs.Space, native []float64) Config {
	cfg := DefaultTestConfig(dir)
	get := func(name string) (float64, bool) {
		i := space.Index(name)
		if i < 0 {
			return 0, false
		}
		return native[i], true
	}
	if v, ok := get("innodb_buffer_pool_size"); ok {
		cfg.BufferPoolBytes = int64(v)
	}
	if v, ok := get("innodb_buffer_pool_instances"); ok {
		cfg.BufferPoolInstances = int(v)
	}
	if v, ok := get("innodb_old_blocks_pct"); ok {
		cfg.OldBlocksPct = int(v)
	}
	if v, ok := get("innodb_lru_scan_depth"); ok {
		cfg.LRUScanDepth = int(v)
	}
	if v, ok := get("innodb_io_capacity"); ok {
		cfg.IOCapacity = int(v)
	}
	if v, ok := get("innodb_flush_log_at_trx_commit"); ok {
		cfg.WAL.Policy = FlushPolicy(int(v))
	}
	if v, ok := get("innodb_log_buffer_size"); ok {
		cfg.WAL.BufferBytes = int(v)
	}
	if v, ok := get("innodb_spin_wait_delay"); ok {
		cfg.SpinWaitDelay = int(v)
	}
	if v, ok := get("innodb_sync_spin_loops"); ok {
		cfg.SyncSpinLoops = int(v)
	}
	if v, ok := get("innodb_thread_concurrency"); ok {
		cfg.ThreadConcurrency = int(v)
	}
	if v, ok := get("table_open_cache"); ok {
		cfg.TableOpenCache = int(v)
	}
	return cfg
}

// catalogEntry persists one table's identity.
type catalogEntry struct {
	Root PageID `json:"root"`
	ID   uint32 `json:"id"`
}

// tableHandle is a cached open table. lastUsed is a logical-clock tick
// updated with an atomic store so cache hits never take the exclusive
// catalog lock.
type tableHandle struct {
	tree     *BTree
	id       uint32
	lastUsed atomic.Int64
}

// DB is the engine instance. The catalog lock (db.mu) is a read-write
// mutex held shared on the statement hot path (table-cache hits) and
// exclusive only for DDL, table opens/evictions, and root-pointer
// persistence; statement data access is serialized by the per-table B-tree
// latches and the row-lock manager instead (see DESIGN.md).
type DB struct {
	cfg   Config
	pager *pager
	pool  *BufferPool
	wal   *WAL
	locks *LockManager
	admit chan struct{}

	mu      sync.RWMutex
	catalog map[string]catalogEntry
	open    map[string]*tableHandle // table cache (bounded by TableOpenCache)
	nextID  uint32

	clock   atomic.Int64  // logical clock for table-cache LRU
	nextTxn atomic.Uint32 // WAL transaction ids

	tableOpens  atomic.Uint64
	tableHits   atomic.Uint64
	commits     atomic.Uint64
	statementsN atomic.Uint64
}

// Open creates or reopens a database in cfg.Dir, running WAL recovery for
// transactions committed after the last checkpoint.
func Open(cfg Config) (*DB, error) {
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	pg, err := newPager(filepath.Join(cfg.Dir, "data.mdb"))
	if err != nil {
		return nil, err
	}
	frames := int(cfg.BufferPoolBytes / PageSize)
	pool := newBufferPool(pg, BufferPoolConfig{
		Frames:          frames,
		Instances:       cfg.BufferPoolInstances,
		OldBlocksPct:    cfg.OldBlocksPct,
		LRUScanDepth:    cfg.LRUScanDepth,
		IOCapacity:      cfg.IOCapacity,
		CleanerInterval: cfg.CleanerInterval,
	})
	db := &DB{
		cfg:     cfg,
		pager:   pg,
		pool:    pool,
		locks:   NewLockManager(cfg.SpinWaitDelay, cfg.SyncSpinLoops),
		catalog: make(map[string]catalogEntry),
		open:    make(map[string]*tableHandle),
	}
	if cfg.ThreadConcurrency > 0 {
		db.admit = make(chan struct{}, cfg.ThreadConcurrency)
	}
	if err := db.loadCatalog(); err != nil {
		pool.Close()
		pg.close()
		return nil, err
	}
	if err := db.advanceAllocator(); err != nil {
		pool.Close()
		pg.close()
		return nil, err
	}
	walPath := filepath.Join(cfg.Dir, "wal.log")
	if err := db.recover(walPath); err != nil {
		pool.Close()
		pg.close()
		return nil, err
	}
	db.wal, err = openWAL(walPath, cfg.WAL)
	if err != nil {
		pool.Close()
		pg.close()
		return nil, err
	}
	return db, nil
}

func (db *DB) catalogPath() string { return filepath.Join(db.cfg.Dir, "catalog.json") }

func (db *DB) loadCatalog() error {
	data, err := os.ReadFile(db.catalogPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, &db.catalog); err != nil {
		return fmt.Errorf("minidb: corrupt catalog: %w", err)
	}
	for _, e := range db.catalog {
		if e.ID >= db.nextID {
			db.nextID = e.ID + 1
		}
	}
	return nil
}

func (db *DB) saveCatalog() error {
	data, err := json.Marshal(db.catalog)
	if err != nil {
		return err
	}
	return os.WriteFile(db.catalogPath(), data, 0o644)
}

// recover applies committed WAL entries, checkpoints, and truncates the log.
func (db *DB) recover(walPath string) error {
	entries, err := ReplayWAL(walPath)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return removeIfExists(walPath)
	}
	byID := make(map[uint32]string)
	for name, e := range db.catalog {
		byID[e.ID] = name
	}
	for _, e := range entries {
		name, ok := byID[e.Table]
		if !ok {
			continue // table dropped
		}
		t := openBTree(db.pool, db.catalog[name].Root)
		switch e.Kind {
		case recPut:
			if err := t.Put(e.Key, e.Val); err != nil {
				return err
			}
		case recDelete:
			if _, err := t.Delete(e.Key); err != nil {
				return err
			}
		}
		// Root may have grown during recovery.
		ce := db.catalog[name]
		ce.Root = t.Root()
		db.catalog[name] = ce
	}
	if err := db.pool.FlushAll(); err != nil {
		return err
	}
	if err := db.saveCatalog(); err != nil {
		return err
	}
	return removeIfExists(walPath)
}

// advanceAllocator walks every table from its persisted root and advances
// the page allocator past the highest page id any reachable node
// references. After a crash the data file alone undercounts allocation:
// pages allocated before the crash but never flushed lie beyond EOF, yet a
// flushed parent may still point at them — re-issuing such an id would
// fuse two live nodes onto one page and corrupt the recovered tree.
func (db *DB) advanceAllocator() error {
	if len(db.catalog) == 0 {
		return nil
	}
	maxSeen := PageID(0)
	for _, ce := range db.catalog {
		if err := db.maxPageInTree(ce.Root, &maxSeen); err != nil {
			return err
		}
	}
	if next := uint32(maxSeen) + 1; next > db.pager.pages.Load() {
		db.pager.pages.Store(next)
	}
	return nil
}

func (db *DB) maxPageInTree(id PageID, maxSeen *PageID) error {
	if id > *maxSeen {
		*maxSeen = id
	}
	p, err := db.pool.Fetch(id)
	if err != nil {
		return err
	}
	if p.data[0] == nodeLeaf {
		// Unflushed pages read back zeroed, i.e. as empty leaves: the id
		// itself is still counted above.
		db.pool.Unpin(p, false)
		return nil
	}
	node := readInternal(&p.data)
	db.pool.Unpin(p, false)
	for _, c := range node.children {
		if err := db.maxPageInTree(c, maxSeen); err != nil {
			return err
		}
	}
	return nil
}

// removeIfExists deletes a file, treating absence as success.
func removeIfExists(path string) error {
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// CreateTable registers a new table.
func (db *DB) CreateTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.catalog[name]; exists {
		return fmt.Errorf("minidb: table %s already exists", name)
	}
	t, err := newBTree(db.pool, db.pager)
	if err != nil {
		return err
	}
	db.catalog[name] = catalogEntry{Root: t.Root(), ID: db.nextID}
	h := &tableHandle{tree: t, id: db.nextID}
	h.lastUsed.Store(db.clock.Add(1))
	db.nextID++
	db.open[name] = h
	db.evictTablesLocked()
	return db.saveCatalog()
}

// table returns the cached handle, opening it on a miss. A cache hit takes
// only the shared catalog lock plus an atomic clock tick — the common case
// for replay, where every statement resolves a table.
func (db *DB) table(name string) (*BTree, uint32, error) {
	db.mu.RLock()
	if h, ok := db.open[name]; ok {
		h.lastUsed.Store(db.clock.Add(1))
		db.mu.RUnlock()
		db.tableHits.Add(1)
		return h.tree, h.id, nil
	}
	db.mu.RUnlock()
	return db.openTable(name)
}

// openTable is the miss path. Opening is not free: the root page is fetched
// and checksummed (the dictionary work table_open_cache exists to avoid).
func (db *DB) openTable(name string) (*BTree, uint32, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	ce, ok := db.catalog[name]
	if !ok {
		return nil, 0, fmt.Errorf("minidb: no such table %s", name)
	}
	if h, ok := db.open[name]; ok {
		// Lost the open race: another statement cached it meanwhile.
		db.tableHits.Add(1)
		h.lastUsed.Store(db.clock.Add(1))
		return h.tree, h.id, nil
	}
	db.tableOpens.Add(1)
	t := openBTree(db.pool, ce.Root)
	// Open cost: validate the root page. The shared page latch guards
	// against a concurrent in-place write through a stale handle.
	p, err := db.pool.Fetch(ce.Root)
	if err != nil {
		return nil, 0, err
	}
	p.latch.RLock()
	_ = crc32.ChecksumIEEE(p.data[:])
	p.latch.RUnlock()
	db.pool.Unpin(p, false)
	h := &tableHandle{tree: t, id: ce.ID}
	h.lastUsed.Store(db.clock.Add(1))
	db.open[name] = h
	db.evictTablesLocked()
	return t, ce.ID, nil
}

func (db *DB) evictTablesLocked() {
	limit := db.cfg.TableOpenCache
	if limit < 1 {
		limit = 1
	}
	for len(db.open) > limit {
		victim := ""
		oldest := int64(math.MaxInt64)
		for n, h := range db.open {
			if lu := h.lastUsed.Load(); lu < oldest {
				oldest, victim = lu, n
			}
		}
		// Persist the (possibly grown) root before dropping the handle.
		h := db.open[victim]
		ce := db.catalog[victim]
		ce.Root = h.tree.Root()
		db.catalog[victim] = ce
		delete(db.open, victim)
	}
}

// enter applies admission control.
func (db *DB) enter() func() {
	if db.admit == nil {
		return func() {}
	}
	db.admit <- struct{}{}
	return func() { <-db.admit }
}

// Get reads one row.
func (db *DB) Get(tableName string, key int64) ([]byte, bool, error) {
	defer db.enter()()
	db.statementsN.Add(1)
	t, _, err := db.table(tableName)
	if err != nil {
		return nil, false, err
	}
	return t.Get(key)
}

// Put writes one row under the row lock, logged and committed as its own
// transaction.
func (db *DB) Put(tableName string, key int64, val []byte) error {
	defer db.enter()()
	db.statementsN.Add(1)
	t, id, err := db.table(tableName)
	if err != nil {
		return err
	}
	lockID := rowLockID(id, key)
	db.locks.Acquire(lockID)
	defer db.locks.Release(lockID)
	txn := db.nextTxn.Add(1)
	if err := db.wal.Append(recPut, txn, id, key, val); err != nil {
		return err
	}
	if err := t.Put(key, val); err != nil {
		return err
	}
	db.syncRoot(tableName, t)
	db.commits.Add(1)
	return db.wal.Commit(txn)
}

// Delete removes one row.
func (db *DB) Delete(tableName string, key int64) (bool, error) {
	defer db.enter()()
	db.statementsN.Add(1)
	t, id, err := db.table(tableName)
	if err != nil {
		return false, err
	}
	lockID := rowLockID(id, key)
	db.locks.Acquire(lockID)
	defer db.locks.Release(lockID)
	txn := db.nextTxn.Add(1)
	if err := db.wal.Append(recDelete, txn, id, key, nil); err != nil {
		return false, err
	}
	ok, err := t.Delete(key)
	if err != nil {
		return false, err
	}
	db.commits.Add(1)
	return ok, db.wal.Commit(txn)
}

// Scan visits [lo, hi] in key order.
func (db *DB) Scan(tableName string, lo, hi int64, fn func(key int64, val []byte) bool) error {
	defer db.enter()()
	db.statementsN.Add(1)
	t, _, err := db.table(tableName)
	if err != nil {
		return err
	}
	return t.Scan(lo, hi, fn)
}

// syncRoot records root growth in the catalog (persisted lazily; recovery
// replays the WAL against the last persisted root). The common case — the
// root did not move — is checked under the shared lock so the per-statement
// write path stays off the exclusive catalog lock.
func (db *DB) syncRoot(name string, t *BTree) {
	root := t.Root()
	db.mu.RLock()
	same := db.catalog[name].Root == root
	db.mu.RUnlock()
	if same {
		return
	}
	db.mu.Lock()
	ce := db.catalog[name]
	if ce.Root != root {
		ce.Root = root
		db.catalog[name] = ce
		_ = db.saveCatalog()
	}
	db.mu.Unlock()
}

func rowLockID(table uint32, key int64) uint64 {
	return uint64(table)<<40 ^ uint64(key)
}

// Close checkpoints and shuts down.
func (db *DB) Close() error {
	if err := db.pool.Close(); err != nil {
		return err
	}
	db.mu.Lock()
	for name, h := range db.open {
		ce := db.catalog[name]
		ce.Root = h.tree.Root()
		db.catalog[name] = ce
	}
	err := db.saveCatalog()
	db.mu.Unlock()
	if err != nil {
		return err
	}
	if err := db.wal.Close(); err != nil {
		return err
	}
	// A clean shutdown checkpointed everything: the WAL is obsolete.
	_ = os.Remove(filepath.Join(db.cfg.Dir, "wal.log"))
	return db.pager.close()
}

// Stats is an engine counter snapshot — the minidb analogue of the
// simulator's internal metrics.
type Stats struct {
	BufferHits, BufferMisses  uint64
	PageFlushes, Evictions    uint64
	PhysicalReads, PhysWrites uint64
	WALWrites, WALSyncs       uint64
	WALGroupCommits           uint64
	LockWaits, SpinRounds     uint64
	TableOpens, TableHits     uint64
	Commits, Statements       uint64
	ResidentPages             int
}

// Stats returns the current counters.
func (db *DB) Stats() Stats {
	h, m, f, e := db.pool.Stats()
	pr, pw := db.pager.counters()
	ww, ws := db.wal.Stats()
	lw, sr := db.locks.Stats()
	return Stats{
		BufferHits: h, BufferMisses: m, PageFlushes: f, Evictions: e,
		PhysicalReads: pr, PhysWrites: pw,
		WALWrites: ww, WALSyncs: ws,
		WALGroupCommits: db.wal.GroupedCommits(),
		LockWaits:       lw, SpinRounds: sr,
		TableOpens: db.tableOpens.Load(), TableHits: db.tableHits.Load(),
		Commits: db.commits.Load(), Statements: db.statementsN.Load(),
		ResidentPages: db.pool.Len(),
	}
}
