package minidb

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/knobs"
	"repro/internal/obs"
	"repro/internal/vfs"
)

// Config assembles the engine's tunables — each field mirrors the MySQL
// knob the paper tunes.
type Config struct {
	// Dir is the database directory (data file, WAL, catalog).
	Dir string
	// FS is the filesystem backend; nil means the real one (vfs.OS). The
	// crash harness passes a vfs.FaultFS here.
	FS vfs.FS
	// DisableDoublewrite turns off the torn-page doublewrite buffer
	// (innodb_doublewrite=OFF): faster flushes, no protection against a
	// page write torn mid-sector.
	DisableDoublewrite bool
	// BufferPoolBytes sizes the buffer pool (innodb_buffer_pool_size).
	BufferPoolBytes int64
	// BufferPoolInstances splits the pool into independently latched
	// instances (innodb_buffer_pool_instances; values < 1 mean one).
	BufferPoolInstances int
	// OldBlocksPct is the LRU old-sublist share (innodb_old_blocks_pct).
	OldBlocksPct int
	// LRUScanDepth is the page cleaner scan depth (innodb_lru_scan_depth).
	LRUScanDepth int
	// IOCapacity caps cleaner writes/second (innodb_io_capacity).
	IOCapacity int
	// CleanerInterval is the cleaner period (0 disables it).
	CleanerInterval time.Duration
	// WAL tunes the redo log.
	WAL WALConfig
	// SpinWaitDelay / SyncSpinLoops tune lock acquisition.
	SpinWaitDelay int
	SyncSpinLoops int
	// ThreadConcurrency caps concurrently executing operations
	// (innodb_thread_concurrency; 0 = unlimited).
	ThreadConcurrency int
	// TableOpenCache bounds cached table handles (table_open_cache).
	TableOpenCache int
	// Recorder receives engine telemetry (WAL fsync/batch histograms,
	// per-shard pool counters, lock- and latch-wait counters, recovery-phase
	// spans). Nil records nothing. Telemetry is strictly write-only: no
	// engine decision reads it, so deterministic replays stay bit-identical
	// with a live recorder attached.
	Recorder obs.Recorder
}

// DefaultTestConfig returns a small configuration suitable for tests.
func DefaultTestConfig(dir string) Config {
	return Config{
		Dir:                 dir,
		BufferPoolBytes:     256 * PageSize,
		BufferPoolInstances: 4,
		OldBlocksPct:        37,
		LRUScanDepth:        64,
		IOCapacity:          2000,
		WAL:                 WALConfig{BufferBytes: 1 << 16, Policy: FlushEachCommit},
		SyncSpinLoops:       30,
		SpinWaitDelay:       6,
		TableOpenCache:      64,
	}
}

// ConfigFromKnobs maps a native configuration over a knob subspace onto
// engine parameters; knobs the engine does not model are ignored.
func ConfigFromKnobs(dir string, space *knobs.Space, native []float64) Config {
	cfg := DefaultTestConfig(dir)
	get := func(name string) (float64, bool) {
		i := space.Index(name)
		if i < 0 {
			return 0, false
		}
		return native[i], true
	}
	if v, ok := get("innodb_buffer_pool_size"); ok {
		cfg.BufferPoolBytes = int64(v)
	}
	if v, ok := get("innodb_buffer_pool_instances"); ok {
		cfg.BufferPoolInstances = int(v)
	}
	if v, ok := get("innodb_old_blocks_pct"); ok {
		cfg.OldBlocksPct = int(v)
	}
	if v, ok := get("innodb_lru_scan_depth"); ok {
		cfg.LRUScanDepth = int(v)
	}
	if v, ok := get("innodb_io_capacity"); ok {
		cfg.IOCapacity = int(v)
	}
	if v, ok := get("innodb_flush_log_at_trx_commit"); ok {
		cfg.WAL.Policy = FlushPolicy(int(v))
	}
	if v, ok := get("innodb_log_buffer_size"); ok {
		cfg.WAL.BufferBytes = int(v)
	}
	if v, ok := get("innodb_spin_wait_delay"); ok {
		cfg.SpinWaitDelay = int(v)
	}
	if v, ok := get("innodb_sync_spin_loops"); ok {
		cfg.SyncSpinLoops = int(v)
	}
	if v, ok := get("innodb_thread_concurrency"); ok {
		cfg.ThreadConcurrency = int(v)
	}
	if v, ok := get("table_open_cache"); ok {
		cfg.TableOpenCache = int(v)
	}
	return cfg
}

// catalogEntry persists one table's identity.
type catalogEntry struct {
	Root PageID `json:"root"`
	ID   uint32 `json:"id"`
}

// tableHandle is a cached open table. lastUsed is a logical-clock tick
// updated with an atomic store so cache hits never take the exclusive
// catalog lock.
type tableHandle struct {
	tree     *BTree
	id       uint32
	lastUsed atomic.Int64
}

// DB is the engine instance. The catalog lock (db.mu) is a read-write
// mutex held shared on the statement hot path (table-cache hits) and
// exclusive only for DDL, table opens/evictions, and root-pointer
// bookkeeping; statement data access is serialized by the per-table B-tree
// latches and the row-lock manager instead (see DESIGN.md).
type DB struct {
	cfg   Config
	fs    vfs.FS
	pager *pager
	pool  *BufferPool
	wal   *WAL
	locks *LockManager
	admit chan struct{}

	mu      sync.RWMutex
	catalog map[string]catalogEntry
	open    map[string]*tableHandle // table cache (bounded by TableOpenCache)
	nextID  uint32

	clock   atomic.Int64  // logical clock for table-cache LRU
	nextTxn atomic.Uint32 // WAL transaction ids

	tableOpens  atomic.Uint64
	tableHits   atomic.Uint64
	commits     atomic.Uint64
	statementsN atomic.Uint64

	rec            obs.Recorder // never nil (OrNop); write-only telemetry
	treeLatchWaits obs.Counter  // nil unless the recorder is live
}

// Open creates or reopens a database in cfg.Dir, running crash recovery:
// doublewrite restore, physical page-image redo, logical redo of committed
// transactions, undo of uncommitted ones, then a checkpoint that empties
// the log.
func Open(cfg Config) (*DB, error) {
	fsys := cfg.FS
	if fsys == nil {
		fsys = vfs.OS()
	}
	if err := fsys.MkdirAll(cfg.Dir); err != nil {
		return nil, err
	}
	pg, err := newPager(fsys,
		filepath.Join(cfg.Dir, "data.mdb"),
		filepath.Join(cfg.Dir, "dblwr.mdb"),
		!cfg.DisableDoublewrite)
	if err != nil {
		return nil, err
	}
	rec := obs.OrNop(cfg.Recorder)
	frames := int(cfg.BufferPoolBytes / PageSize)
	pool := newBufferPool(pg, BufferPoolConfig{
		Frames:          frames,
		Instances:       cfg.BufferPoolInstances,
		OldBlocksPct:    cfg.OldBlocksPct,
		LRUScanDepth:    cfg.LRUScanDepth,
		IOCapacity:      cfg.IOCapacity,
		CleanerInterval: cfg.CleanerInterval,
		Recorder:        rec,
	})
	db := &DB{
		cfg:     cfg,
		fs:      fsys,
		pager:   pg,
		pool:    pool,
		locks:   NewLockManager(cfg.SpinWaitDelay, cfg.SyncSpinLoops),
		catalog: make(map[string]catalogEntry),
		open:    make(map[string]*tableHandle),
		rec:     rec,
	}
	db.locks.setRecorder(rec)
	if rec.Enabled() {
		db.treeLatchWaits = rec.Counter("minidb.btree.latch_waits")
	}
	if cfg.ThreadConcurrency > 0 {
		db.admit = make(chan struct{}, cfg.ThreadConcurrency)
	}
	fail := func(err error) (*DB, error) {
		if pool.cleanerStop != nil {
			close(pool.cleanerStop)
			<-pool.cleanerDone
		}
		pg.close()
		return nil, err
	}
	if err := db.loadCatalog(); err != nil {
		return fail(err)
	}
	walPath := filepath.Join(cfg.Dir, "wal.log")
	walBytes, err := fsys.ReadFile(walPath)
	if err != nil && !os.IsNotExist(err) {
		return fail(err)
	}
	parse := parseWAL(walBytes)
	walCfg := cfg.WAL
	walCfg.Recorder = rec
	db.wal, err = openWAL(fsys, walPath, walCfg)
	if err != nil {
		return fail(err)
	}
	// The write-ahead rule: no page reaches disk before the log records
	// describing it. Every pager write syncs the log first.
	pg.barrier = db.wal.Sync
	// Recovery appends its own records (split images); their transaction
	// ids must not collide with ids already in the log if we crash again
	// mid-recovery.
	db.nextTxn.Store(parse.maxTxn)
	if len(walBytes) > 0 {
		if int64(len(walBytes)) > parse.validLen {
			// Torn tail: cut it before appending behind it.
			if err := db.wal.TruncateTo(parse.validLen); err != nil {
				db.wal.Close()
				return fail(err)
			}
		}
		if err := db.recover(parse); err != nil {
			db.wal.Close()
			return fail(fmt.Errorf("minidb: recovery: %w", err))
		}
		if err := db.checkpoint(); err != nil {
			db.wal.Close()
			return fail(fmt.Errorf("minidb: recovery checkpoint: %w", err))
		}
	} else if err := db.advanceAllocator(); err != nil {
		db.wal.Close()
		return fail(err)
	}
	return db, nil
}

func (db *DB) catalogPath() string { return filepath.Join(db.cfg.Dir, "catalog.json") }

func (db *DB) loadCatalog() error {
	data, err := db.fs.ReadFile(db.catalogPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, &db.catalog); err != nil {
		return fmt.Errorf("minidb: corrupt catalog: %w", err)
	}
	for _, e := range db.catalog {
		if e.ID >= db.nextID {
			db.nextID = e.ID + 1
		}
	}
	return nil
}

// saveCatalog persists the catalog atomically: write + fsync a temp file,
// then rename over the live one, so a crash leaves either the old or the
// new catalog — never a truncated mix.
func (db *DB) saveCatalog() error {
	data, err := json.Marshal(db.catalog)
	if err != nil {
		return err
	}
	tmp := db.catalogPath() + ".tmp"
	f, err := db.fs.OpenFile(tmp)
	if err != nil {
		return err
	}
	if err := f.Truncate(0); err != nil {
		f.Close()
		return err
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return db.fs.Rename(tmp, db.catalogPath())
}

// hookTree wires a tree's structural hook: a completed split logs every
// page it wrote plus the resulting root as one logged transaction. The
// commit marker is what recovery keys atomicity on — a torn tail that cuts
// the set drops all of it, matching the on-disk state (the pages were
// pinned until the set was logged, so none of them can have been flushed).
func (db *DB) hookTree(t *BTree, table uint32) {
	t.latchWaits = db.treeLatchWaits
	t.onStructural = func(pages []*page, root PageID) error {
		txn := db.nextTxn.Add(1)
		for _, p := range pages {
			if err := db.wal.AppendPageImage(txn, p.id, &p.data); err != nil {
				return err
			}
		}
		if err := db.wal.AppendRoot(txn, table, root); err != nil {
			return err
		}
		return db.wal.AppendCommit(txn)
	}
}

// recover replays a parsed log over the on-disk state:
//
//  1. Physical redo — committed page images are restored byte-for-byte in
//     commit order and root records move table roots. This rebuilds
//     structural modifications that logical replay cannot (keys moved by a
//     split predate the log's logical records).
//  2. Logical redo — committed put/delete records replay in commit order
//     through ordinary B-trees rooted at the restored roots. Idempotent
//     over whatever subset of pages happened to be flushed.
//  3. Undo — records of transactions with no durable commit marker are
//     rolled back newest-first using their logged before-images, erasing
//     eagerly-applied writes that reached disk via evicted dirty pages.
//
// Trees used during recovery carry the structural hook, so splits replay
// causes are themselves logged — a crash during recovery recovers.
func (db *DB) recover(p walParse) error {
	if db.rec.Enabled() {
		sp := db.rec.Span("minidb.recovery",
			obs.Int("committed", len(p.committed)),
			obs.Int("uncommitted", len(p.uncommitted)))
		defer sp.End()
	}
	byID := make(map[uint32]string)
	for name, e := range db.catalog {
		byID[e.ID] = name
	}
	phase := db.rec.Span("minidb.recovery.physical_redo")
	for _, e := range p.committed {
		switch e.Kind {
		case recPageImage:
			id := PageID(e.Key)
			if next := uint32(id) + 1; next > db.pager.pages.Load() {
				db.pager.pages.Store(next)
			}
			pg, err := db.pool.Fetch(id)
			if err != nil {
				return err
			}
			pg.latch.Lock()
			copy(pg.data[:], e.Val)
			pg.latch.Unlock()
			db.pool.Unpin(pg, true)
		case recRoot:
			if name, ok := byID[e.Table]; ok {
				ce := db.catalog[name]
				ce.Root = PageID(e.Key)
				db.catalog[name] = ce
			}
		}
	}
	if err := db.advanceAllocator(); err != nil {
		return err
	}
	phase.End()
	phase = db.rec.Span("minidb.recovery.logical_redo")
	trees := make(map[uint32]*BTree)
	tree := func(table uint32) *BTree {
		if t, ok := trees[table]; ok {
			return t
		}
		t := openBTree(db.pool, db.catalog[byID[table]].Root)
		db.hookTree(t, table)
		trees[table] = t
		return t
	}
	for _, e := range p.committed {
		if _, ok := byID[e.Table]; !ok {
			continue // table dropped
		}
		switch e.Kind {
		case recPut:
			if err := tree(e.Table).Put(e.Key, e.Val); err != nil {
				return err
			}
		case recDelete:
			if _, err := tree(e.Table).Delete(e.Key); err != nil {
				return err
			}
		}
	}
	phase.End()
	phase = db.rec.Span("minidb.recovery.undo")
	for i := len(p.uncommitted) - 1; i >= 0; i-- {
		e := p.uncommitted[i]
		if _, ok := byID[e.Table]; !ok {
			continue
		}
		t := tree(e.Table)
		if e.PrevExisted {
			if err := t.Put(e.Key, e.Prev); err != nil {
				return err
			}
		} else if _, err := t.Delete(e.Key); err != nil {
			return err
		}
	}
	phase.End()
	// Roots may have grown during replay.
	for table, t := range trees {
		ce := db.catalog[byID[table]]
		ce.Root = t.Root()
		db.catalog[byID[table]] = ce
	}
	return nil
}

// checkpoint makes every change durable in the data file and empties the
// log: flush all pages (each flush syncs the log first via the barrier),
// fsync the data file, persist the catalog, truncate the log. Callers must
// be quiescent — an in-flight transaction's eager writes would checkpoint
// without the undo records that could erase them.
func (db *DB) checkpoint() error {
	if db.rec.Enabled() {
		sp := db.rec.Span("minidb.checkpoint")
		defer sp.End()
	}
	if err := db.pool.FlushAll(); err != nil {
		return err
	}
	if err := db.pager.sync(); err != nil {
		return err
	}
	db.mu.Lock()
	for name, h := range db.open {
		ce := db.catalog[name]
		ce.Root = h.tree.Root()
		db.catalog[name] = ce
	}
	err := db.saveCatalog()
	db.mu.Unlock()
	if err != nil {
		return err
	}
	return db.wal.Reset()
}

// advanceAllocator walks every table from its root and advances the page
// allocator past the highest page id any reachable node references. After
// a crash the data file alone undercounts allocation: pages allocated
// before the crash but never flushed lie beyond EOF, yet a flushed parent
// may still point at them — re-issuing such an id would fuse two live
// nodes onto one page and corrupt the recovered tree.
func (db *DB) advanceAllocator() error {
	if len(db.catalog) == 0 {
		return nil
	}
	maxSeen := PageID(0)
	visited := make(map[PageID]bool)
	for _, ce := range db.catalog {
		if err := db.maxPageInTree(ce.Root, &maxSeen, visited, 0); err != nil {
			return err
		}
	}
	if next := uint32(maxSeen) + 1; next > db.pager.pages.Load() {
		db.pager.pages.Store(next)
	}
	return nil
}

func (db *DB) maxPageInTree(id PageID, maxSeen *PageID, visited map[PageID]bool, depth int) error {
	if id > *maxSeen {
		*maxSeen = id
	}
	// A corrupt page can reference itself or an ancestor; the walk only
	// needs each page once, so cycles are skipped rather than followed.
	if visited[id] || depth >= maxDepth {
		return nil
	}
	visited[id] = true
	p, err := db.pool.Fetch(id)
	if err != nil {
		return err
	}
	if p.data[0] == nodeLeaf {
		// Unflushed pages read back zeroed, i.e. as empty leaves: the id
		// itself is still counted above.
		db.pool.Unpin(p, false)
		return nil
	}
	node := readInternal(&p.data)
	db.pool.Unpin(p, false)
	for _, c := range node.children {
		if err := db.maxPageInTree(c, maxSeen, visited, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// CreateTable registers a new table.
func (db *DB) CreateTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.catalog[name]; exists {
		return fmt.Errorf("minidb: table %s already exists", name)
	}
	t, err := newBTree(db.pool, db.pager)
	if err != nil {
		return err
	}
	db.hookTree(t, db.nextID)
	db.catalog[name] = catalogEntry{Root: t.Root(), ID: db.nextID}
	h := &tableHandle{tree: t, id: db.nextID}
	h.lastUsed.Store(db.clock.Add(1))
	db.nextID++
	db.open[name] = h
	db.evictTablesLocked()
	return db.saveCatalog()
}

// table returns the cached handle, opening it on a miss. A cache hit takes
// only the shared catalog lock plus an atomic clock tick — the common case
// for replay, where every statement resolves a table.
func (db *DB) table(name string) (*BTree, uint32, error) {
	db.mu.RLock()
	if h, ok := db.open[name]; ok {
		h.lastUsed.Store(db.clock.Add(1))
		db.mu.RUnlock()
		db.tableHits.Add(1)
		return h.tree, h.id, nil
	}
	db.mu.RUnlock()
	return db.openTable(name)
}

// openTable is the miss path. Opening is not free: the root page is fetched
// and checksummed (the dictionary work table_open_cache exists to avoid).
func (db *DB) openTable(name string) (*BTree, uint32, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	ce, ok := db.catalog[name]
	if !ok {
		return nil, 0, fmt.Errorf("minidb: no such table %s", name)
	}
	if h, ok := db.open[name]; ok {
		// Lost the open race: another statement cached it meanwhile.
		db.tableHits.Add(1)
		h.lastUsed.Store(db.clock.Add(1))
		return h.tree, h.id, nil
	}
	db.tableOpens.Add(1)
	t := openBTree(db.pool, ce.Root)
	db.hookTree(t, ce.ID)
	// Open cost: validate the root page. The shared page latch guards
	// against a concurrent in-place write through a stale handle.
	p, err := db.pool.Fetch(ce.Root)
	if err != nil {
		return nil, 0, err
	}
	p.latch.RLock()
	_ = crc32.ChecksumIEEE(p.data[:])
	p.latch.RUnlock()
	db.pool.Unpin(p, false)
	h := &tableHandle{tree: t, id: ce.ID}
	h.lastUsed.Store(db.clock.Add(1))
	db.open[name] = h
	db.evictTablesLocked()
	return t, ce.ID, nil
}

func (db *DB) evictTablesLocked() {
	limit := db.cfg.TableOpenCache
	if limit < 1 {
		limit = 1
	}
	for len(db.open) > limit {
		victim := ""
		oldest := int64(math.MaxInt64)
		for n, h := range db.open {
			if lu := h.lastUsed.Load(); lu < oldest {
				oldest, victim = lu, n
			}
		}
		// Record the (possibly grown) root before dropping the handle.
		h := db.open[victim]
		ce := db.catalog[victim]
		ce.Root = h.tree.Root()
		db.catalog[victim] = ce
		delete(db.open, victim)
	}
}

// enter applies admission control.
func (db *DB) enter() func() {
	if db.admit == nil {
		return func() {}
	}
	db.admit <- struct{}{}
	return func() { <-db.admit }
}

// Get reads one row.
func (db *DB) Get(tableName string, key int64) ([]byte, bool, error) {
	defer db.enter()()
	db.statementsN.Add(1)
	t, _, err := db.table(tableName)
	if err != nil {
		return nil, false, err
	}
	return t.Get(key)
}

// Put writes one row under the row lock, logged and committed as its own
// transaction. The row's previous value rides along as the WAL record's
// before-image so recovery can undo the write if the commit record never
// becomes durable.
func (db *DB) Put(tableName string, key int64, val []byte) error {
	defer db.enter()()
	db.statementsN.Add(1)
	t, id, err := db.table(tableName)
	if err != nil {
		return err
	}
	lockID := rowLockID(id, key)
	db.locks.Acquire(lockID)
	defer db.locks.Release(lockID)
	prev, existed, err := t.Get(key)
	if err != nil {
		return err
	}
	txn := db.nextTxn.Add(1)
	if err := db.wal.AppendUndo(recPut, txn, id, key, val, existed, prev); err != nil {
		return err
	}
	if err := t.Put(key, val); err != nil {
		return err
	}
	db.syncRoot(tableName, t)
	db.commits.Add(1)
	return db.wal.Commit(txn)
}

// Delete removes one row.
func (db *DB) Delete(tableName string, key int64) (bool, error) {
	defer db.enter()()
	db.statementsN.Add(1)
	t, id, err := db.table(tableName)
	if err != nil {
		return false, err
	}
	lockID := rowLockID(id, key)
	db.locks.Acquire(lockID)
	defer db.locks.Release(lockID)
	prev, existed, err := t.Get(key)
	if err != nil {
		return false, err
	}
	txn := db.nextTxn.Add(1)
	if err := db.wal.AppendUndo(recDelete, txn, id, key, nil, existed, prev); err != nil {
		return false, err
	}
	ok, err := t.Delete(key)
	if err != nil {
		return false, err
	}
	db.commits.Add(1)
	return ok, db.wal.Commit(txn)
}

// Scan visits [lo, hi] in key order.
func (db *DB) Scan(tableName string, lo, hi int64, fn func(key int64, val []byte) bool) error {
	defer db.enter()()
	db.statementsN.Add(1)
	t, _, err := db.table(tableName)
	if err != nil {
		return err
	}
	return t.Scan(lo, hi, fn)
}

// syncRoot records root growth in the in-memory catalog. Durability does
// not depend on it: the split that moved the root logged a root record in
// the WAL, and checkpoints persist the catalog. The common case — the root
// did not move — is checked under the shared lock so the per-statement
// write path stays off the exclusive catalog lock.
func (db *DB) syncRoot(name string, t *BTree) {
	root := t.Root()
	db.mu.RLock()
	same := db.catalog[name].Root == root
	db.mu.RUnlock()
	if same {
		return
	}
	db.mu.Lock()
	ce := db.catalog[name]
	if ce.Root != root {
		ce.Root = root
		db.catalog[name] = ce
	}
	db.mu.Unlock()
}

func rowLockID(table uint32, key int64) uint64 {
	return uint64(table)<<40 ^ uint64(key)
}

// Close checkpoints and shuts down. Every step's error is reported (the
// first wins), but shutdown always proceeds through closing the files.
func (db *DB) Close() error {
	err := db.pool.Close() // stops the cleaner, flushes every dirty page
	if err == nil {
		err = db.pager.sync()
	}
	db.mu.Lock()
	for name, h := range db.open {
		ce := db.catalog[name]
		ce.Root = h.tree.Root()
		db.catalog[name] = ce
	}
	db.mu.Unlock()
	if err == nil {
		err = db.saveCatalog()
	}
	if err == nil {
		// A clean shutdown checkpointed everything: the WAL is obsolete.
		err = db.wal.Reset()
	}
	if werr := db.wal.Close(); err == nil {
		err = werr
	}
	if perr := db.pager.close(); err == nil {
		err = perr
	}
	return err
}

// Stats is an engine counter snapshot — the minidb analogue of the
// simulator's internal metrics.
type Stats struct {
	BufferHits, BufferMisses  uint64
	PageFlushes, Evictions    uint64
	PhysicalReads, PhysWrites uint64
	WALWrites, WALSyncs       uint64
	WALGroupCommits           uint64
	LockWaits, SpinRounds     uint64
	TableOpens, TableHits     uint64
	Commits, Statements       uint64
	ResidentPages             int
}

// Stats returns the current counters.
func (db *DB) Stats() Stats {
	h, m, f, e := db.pool.Stats()
	pr, pw := db.pager.counters()
	ww, ws := db.wal.Stats()
	lw, sr := db.locks.Stats()
	return Stats{
		BufferHits: h, BufferMisses: m, PageFlushes: f, Evictions: e,
		PhysicalReads: pr, PhysWrites: pw,
		WALWrites: ww, WALSyncs: ws,
		WALGroupCommits: db.wal.GroupedCommits(),
		LockWaits:       lw, SpinRounds: sr,
		TableOpens: db.tableOpens.Load(), TableHits: db.tableHits.Load(),
		Commits: db.commits.Load(), Statements: db.statementsN.Load(),
		ResidentPages: db.pool.Len(),
	}
}
