package minidb

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"
	"testing"

	"repro/internal/bo"
	"repro/internal/core"
	"repro/internal/dbsim"
	"repro/internal/obs"
	"repro/internal/workload"
)

// goldenSession runs one seeded end-to-end tuning session over the
// deterministic minidb evaluator and renders every observation as raw
// float64 bits — the strictest possible trace: any divergence anywhere in
// the pipeline (statement replay, engine counters, GP math, acquisition
// optimization) changes the string. A live recorder is attached to both the
// tuner and the engine so the run also pins the DESIGN.md §8 contract:
// telemetry is write-only and cannot move a single observed bit.
func goldenSession(t *testing.T, seed int64) string {
	t.Helper()
	rec := obs.NewJSONL(io.Discard)
	w := workload.Sysbench(10).WithRequestRate(800)
	ev := NewEvaluator(t.TempDir(), realSpace(), dbsim.IOPS, w, seed)
	ev.Rows = 200
	ev.Deterministic = true
	ev.Recorder = rec

	cfg := core.DefaultConfig(seed)
	cfg.InitIters = 3
	cfg.SLATolerance = 0.50
	cfg.Acq = bo.OptimizerConfig{RandomCandidates: 24, LocalStarts: 2, LocalSteps: 3, StepScale: 0.15}
	cfg.Recorder = rec
	res, err := core.New(cfg).Run(ev, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("telemetry sink: %v", err)
	}

	var b strings.Builder
	for i, it := range res.Iterations {
		o := it.Observation
		fmt.Fprintf(&b, "iter %d theta", i)
		for _, v := range o.Theta {
			fmt.Fprintf(&b, " %016x", math.Float64bits(v))
		}
		fmt.Fprintf(&b, " res %016x tps %016x lat %016x\n",
			math.Float64bits(o.Res), math.Float64bits(o.Tps), math.Float64bits(o.Lat))
	}
	return b.String()
}

// TestGoldenTraceDeterministic: the same seed must yield a bit-identical
// session trace at GOMAXPROCS=1 and GOMAXPROCS=8 — serial replay, counter-
// derived metrics and the deterministic parallel math core together make
// the whole tuning loop scheduling-independent.
func TestGoldenTraceDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several full evaluator sessions")
	}
	const seed = 7

	prev := runtime.GOMAXPROCS(1)
	serial := goldenSession(t, seed)
	serialAgain := goldenSession(t, seed)
	runtime.GOMAXPROCS(8)
	parallel := goldenSession(t, seed)
	runtime.GOMAXPROCS(prev)

	if serial != serialAgain {
		t.Fatalf("same seed, same GOMAXPROCS, different traces:\n--- first\n%s--- second\n%s", serial, serialAgain)
	}
	if serial != parallel {
		t.Fatalf("trace diverges across GOMAXPROCS:\n--- GOMAXPROCS=1\n%s--- GOMAXPROCS=8\n%s", serial, parallel)
	}

	// A different seed must actually move the trace — guards against the
	// trace degenerating into constants.
	runtime.GOMAXPROCS(1)
	other := goldenSession(t, seed+1)
	runtime.GOMAXPROCS(prev)
	if other == serial {
		t.Fatal("different seeds produced identical traces; the trace is not capturing the session")
	}
}

// TestDeterministicMeasureRepeatable pins the evaluator alone: two Measure
// calls with identical knobs and seed return bit-identical measurements.
func TestDeterministicMeasureRepeatable(t *testing.T) {
	w := workload.Sysbench(10).WithRequestRate(800)
	mk := func() dbsim.Measurement {
		ev := NewEvaluator(t.TempDir(), realSpace(), dbsim.IOPS, w, 3)
		ev.Rows = 150
		ev.Deterministic = true
		return ev.Measure(ev.DefaultNative())
	}
	a, b := mk(), mk()
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatalf("deterministic measurements differ:\n%+v\n%+v", a, b)
	}
	if a.TPS <= 0 || a.LatencyP99Ms <= 0 || a.IOPS <= 0 {
		t.Fatalf("degenerate deterministic measurement: %+v", a)
	}

	// The cost model must respond to knobs: relaxing the commit policy
	// removes per-commit fsyncs and therefore modelled IO.
	ev := NewEvaluator(t.TempDir(), realSpace(), dbsim.IOPS, w, 3)
	ev.Rows = 150
	ev.Deterministic = true
	relaxed := ev.DefaultNative()
	relaxed[ev.Space().Index("innodb_flush_log_at_trx_commit")] = 0
	strict := ev.DefaultNative()
	strict[ev.Space().Index("innodb_flush_log_at_trx_commit")] = 1
	if mr, ms := ev.Measure(relaxed), ev.Measure(strict); mr.IOPS >= ms.IOPS {
		t.Fatalf("relaxed commit policy should cut modelled IOPS: %.0f vs %.0f", mr.IOPS, ms.IOPS)
	}
}
