package minidb

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/vfs"
)

// --- pager / buffer pool ----------------------------------------------------

func testPager(t *testing.T) *pager {
	t.Helper()
	dir := t.TempDir()
	p, err := newPager(vfs.OS(), filepath.Join(dir, "data.mdb"), filepath.Join(dir, "dblwr.mdb"), true)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.close() })
	return p
}

func TestPagerRoundTrip(t *testing.T) {
	p := testPager(t)
	id := p.allocate()
	var buf [PageSize]byte
	copy(buf[:], "hello page")
	if err := p.write(id, &buf); err != nil {
		t.Fatal(err)
	}
	var out [PageSize]byte
	if err := p.read(id, &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[:10], []byte("hello page")) {
		t.Fatalf("read back %q", out[:10])
	}
	// A freshly allocated page reads back zeroed even if the frame held
	// stale bytes.
	id2 := p.allocate()
	out[0] = 0xFF
	if err := p.read(id2, &out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 {
		t.Fatal("fresh page not zeroed")
	}
}

func TestBufferPoolHitMissEvict(t *testing.T) {
	pg := testPager(t)
	pool := newBufferPool(pg, BufferPoolConfig{Frames: 8})
	defer pool.Close()

	ids := make([]PageID, 16)
	for i := range ids {
		ids[i] = pg.allocate()
		p, err := pool.Fetch(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		p.data[0] = byte(i)
		pool.Unpin(p, true)
	}
	// Pool capacity 8 < 16 pages: evictions must have occurred and dirty
	// evictees must have been flushed.
	_, misses, flushes, evictions := pool.Stats()
	if misses != 16 {
		t.Fatalf("misses %d want 16", misses)
	}
	if evictions < 8 || flushes < 8 {
		t.Fatalf("evictions %d flushes %d", evictions, flushes)
	}
	// Re-fetch an evicted page: content survived through the pager.
	p, err := pool.Fetch(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if p.data[0] != 0 {
		t.Fatalf("evicted page content lost: %d", p.data[0])
	}
	pool.Unpin(p, false)
	// Fetch the now-resident page again: a hit.
	p, err = pool.Fetch(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	pool.Unpin(p, false)
	if pool.HitRatio() <= 0 || pool.HitRatio() > 1 {
		t.Fatalf("hit ratio %v", pool.HitRatio())
	}
	if pool.Len() > 8 {
		t.Fatalf("resident %d exceeds capacity", pool.Len())
	}
}

func TestBufferPoolYoungOldProtection(t *testing.T) {
	pg := testPager(t)
	pool := newBufferPool(pg, BufferPoolConfig{Frames: 10, OldBlocksPct: 40})
	defer pool.Close()

	// Establish a hot set of 5 pages, touched twice (promoted to young).
	hot := make([]PageID, 5)
	for i := range hot {
		hot[i] = pg.allocate()
	}
	for round := 0; round < 2; round++ {
		for _, id := range hot {
			p, err := pool.Fetch(id)
			if err != nil {
				t.Fatal(err)
			}
			pool.Unpin(p, false)
		}
	}
	// Scan 30 one-off pages through the pool.
	for i := 0; i < 30; i++ {
		id := pg.allocate()
		p, err := pool.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		pool.Unpin(p, false)
	}
	// The hot set should still be mostly resident: one-off pages entered
	// the old sublist and evicted each other.
	resident := 0
	h0, _, _, _ := pool.Stats()
	for _, id := range hot {
		p, err := pool.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		pool.Unpin(p, false)
	}
	h1, _, _, _ := pool.Stats()
	resident = int(h1 - h0)
	if resident < 3 {
		t.Fatalf("only %d/5 hot pages survived a scan; young/old split ineffective", resident)
	}
}

func TestCleanPass(t *testing.T) {
	pg := testPager(t)
	pool := newBufferPool(pg, BufferPoolConfig{Frames: 32})
	defer pool.Close()
	for i := 0; i < 10; i++ {
		id := pg.allocate()
		p, err := pool.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		pool.Unpin(p, true)
	}
	if n := pool.CleanPass(100, 4); n != 4 {
		t.Fatalf("write budget not honored: flushed %d", n)
	}
	if n := pool.CleanPass(3, 100); n > 3 {
		t.Fatalf("scan depth not honored: flushed %d", n)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if n := pool.CleanPass(100, 100); n != 0 {
		t.Fatalf("clean pool flushed %d", n)
	}
}

// --- B+tree -------------------------------------------------------------------

func testTree(t *testing.T) *BTree {
	t.Helper()
	pg := testPager(t)
	pool := newBufferPool(pg, BufferPoolConfig{Frames: 256})
	t.Cleanup(func() { pool.Close() })
	tree, err := newBTree(pool, pg)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestBTreeBasic(t *testing.T) {
	tree := testTree(t)
	if _, found, _ := tree.Get(1); found {
		t.Fatal("empty tree should not find keys")
	}
	if err := tree.Put(1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := tree.Put(1, []byte("uno")); err != nil { // update
		t.Fatal(err)
	}
	v, found, err := tree.Get(1)
	if err != nil || !found || string(v) != "uno" {
		t.Fatalf("get: %q %v %v", v, found, err)
	}
	ok, err := tree.Delete(1)
	if err != nil || !ok {
		t.Fatal("delete failed")
	}
	if _, found, _ := tree.Get(1); found {
		t.Fatal("deleted key still present")
	}
	if ok, _ := tree.Delete(1); ok {
		t.Fatal("double delete reported success")
	}
	if err := tree.Put(2, make([]byte, MaxValueLen+1)); err == nil {
		t.Fatal("oversized value accepted")
	}
}

func TestBTreeSplitsAndScan(t *testing.T) {
	tree := testTree(t)
	const n = 5000 // forces multiple levels of splits
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, k := range perm {
		if err := tree.Put(int64(k), []byte(fmt.Sprintf("v%05d", k))); err != nil {
			t.Fatal(err)
		}
	}
	// Every key retrievable.
	for k := 0; k < n; k += 97 {
		v, found, err := tree.Get(int64(k))
		if err != nil || !found || string(v) != fmt.Sprintf("v%05d", k) {
			t.Fatalf("key %d: %q %v %v", k, v, found, err)
		}
	}
	// Ordered full scan.
	prev := int64(-1)
	count := 0
	if err := tree.Scan(0, int64(n), func(k int64, v []byte) bool {
		if k <= prev {
			t.Fatalf("scan out of order: %d after %d", k, prev)
		}
		prev = k
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("scan visited %d of %d", count, n)
	}
	// Bounded scan with early stop.
	count = 0
	tree.Scan(100, 199, func(k int64, v []byte) bool {
		count++
		return count < 50
	})
	if count != 50 {
		t.Fatalf("early stop visited %d", count)
	}
}

// Property: the tree agrees with a reference map under random workloads.
func TestQuickBTreeAgainstMap(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := testTree(t)
		ref := make(map[int64][]byte)
		for op := 0; op < 400; op++ {
			k := int64(r.Intn(200))
			switch r.Intn(3) {
			case 0, 1:
				v := []byte(fmt.Sprintf("%d-%d", k, op))
				if err := tree.Put(k, v); err != nil {
					return false
				}
				ref[k] = v
			case 2:
				ok, err := tree.Delete(k)
				if err != nil {
					return false
				}
				_, existed := ref[k]
				if ok != existed {
					return false
				}
				delete(ref, k)
			}
		}
		for k, want := range ref {
			v, found, err := tree.Get(k)
			if err != nil || !found || !bytes.Equal(v, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// --- WAL ----------------------------------------------------------------------

func TestWALReplayCommittedOnly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, err := openWAL(vfs.OS(), path, WALConfig{Policy: FlushEachCommit})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(recPut, 1, 1, 10, []byte("a"))
	w.Commit(1)
	w.Append(recPut, 2, 1, 20, []byte("b"))
	w.Append(recDelete, 2, 1, 10, nil)
	w.Commit(2)
	w.Append(recPut, 3, 1, 30, []byte("uncommitted"))
	// Flush the uncommitted tail to disk, then "crash" without commit.
	w.mu.Lock()
	w.writeLocked()
	w.mu.Unlock()
	w.file.Close()

	entries, err := ReplayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("replayed %d entries, want 3 (uncommitted dropped)", len(entries))
	}
	if entries[2].Kind != recDelete || entries[2].Key != 10 {
		t.Fatalf("order wrong: %+v", entries)
	}
}

func TestWALTornRecord(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, err := openWAL(vfs.OS(), path, WALConfig{Policy: FlushEachCommit})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(recPut, 1, 1, 1, []byte("x"))
	w.Commit(1)
	w.Close()
	// Append garbage (a torn write).
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.Write([]byte{9, 0, 0, 0, 1, 2, 3})
	f.Close()
	entries, err := ReplayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("torn tail should be ignored: %d entries", len(entries))
	}
	// Missing file is fine.
	if e, err := ReplayWAL(filepath.Join(dir, "absent")); err != nil || e != nil {
		t.Fatal("missing WAL should replay empty")
	}
}

func TestWALPolicies(t *testing.T) {
	for _, policy := range []FlushPolicy{FlushByTimer, FlushEachCommit, WriteEachCommit} {
		dir := t.TempDir()
		w, err := openWAL(vfs.OS(), filepath.Join(dir, "wal.log"), WALConfig{Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			w.Append(recPut, uint32(i+1), 1, int64(i), []byte("v"))
			w.Commit(uint32(i + 1))
		}
		writes, syncs := w.Stats()
		switch policy {
		case FlushEachCommit:
			if syncs < 10 {
				t.Fatalf("policy 1: %d syncs, want >=10", syncs)
			}
		case WriteEachCommit:
			if writes < 10 || syncs > 1 {
				t.Fatalf("policy 2: writes %d syncs %d", writes, syncs)
			}
		case FlushByTimer:
			if writes > 1 {
				t.Fatalf("policy 0: %d writes before close", writes)
			}
		}
		w.Close()
	}
}

// --- lock manager ---------------------------------------------------------------

func TestLockMutualExclusion(t *testing.T) {
	lm := NewLockManager(4, 8)
	var counter, race int
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				lm.Acquire(7)
				c := counter
				// Widen the critical section so goroutines actually overlap.
				for spin := 0; spin < 50; spin++ {
					runtime.Gosched()
				}
				counter = c + 1
				if counter != c+1 {
					race++
				}
				lm.Release(7)
			}
		}()
	}
	wg.Wait()
	if counter != 1600 || race != 0 {
		t.Fatalf("counter %d race %d", counter, race)
	}
	waits, _ := lm.Stats()
	if waits == 0 {
		t.Fatal("contended workload should record waits")
	}
}

func TestLockSpinCounters(t *testing.T) {
	lm := NewLockManager(2, 50)
	lm.Acquire(1)
	done := make(chan struct{})
	go func() {
		lm.Acquire(1) // must spin then park
		lm.Release(1)
		close(done)
	}()
	// Wait until the contender is observably spinning, then release.
	for {
		if _, spins := lm.Stats(); spins > 0 {
			break
		}
		runtime.Gosched()
	}
	lm.Release(1)
	<-done
	_, spins := lm.Stats()
	if spins == 0 {
		t.Fatal("spin rounds not counted")
	}
	// Uncontended locks do not spin.
	lm2 := NewLockManager(2, 50)
	lm2.Acquire(5)
	lm2.Release(5)
	if w, s := lm2.Stats(); w != 0 || s != 0 {
		t.Fatal("uncontended acquire recorded contention")
	}
}
