package minidb

import (
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/vfs"
)

// --- WAL group commit -------------------------------------------------------

// TestWALGroupCommitConcurrent drives many concurrent committers through the
// leader/follower protocol and checks both the performance invariant (most
// commits ride another commit's fsync) and durability (every committed
// transaction replays).
func TestWALGroupCommitConcurrent(t *testing.T) {
	const goroutines = 32
	const perG = 8
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := openWAL(vfs.OS(), path, WALConfig{Policy: FlushEachCommit})
	if err != nil {
		t.Fatal(err)
	}
	// On a one-core host an fsync can return before the scheduler ever runs
	// a second committer, so the storm would serialize and never exercise
	// the follower path. Hold the flush gate while the first wave of
	// committers piles up in cond.Wait, then release it: one leader's fsync
	// must cover the whole cohort.
	w.mu.Lock()
	w.flushing = true
	w.mu.Unlock()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				txn := uint32(g*perG + i + 1)
				if err := w.Append(recPut, txn, 1, int64(txn), []byte("v")); err != nil {
					t.Error(err)
					return
				}
				if err := w.Commit(txn); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	time.Sleep(30 * time.Millisecond) // let every goroutine park its first commit
	w.mu.Lock()
	w.flushing = false
	w.cond.Broadcast()
	w.mu.Unlock()
	wg.Wait()
	_, syncs := w.Stats()
	grouped := w.GroupedCommits()
	// Every commit either led an fsync or rode one: the counters must cover
	// the commit count.
	if syncs+grouped < goroutines*perG {
		t.Fatalf("syncs %d + grouped %d < %d commits", syncs, grouped, goroutines*perG)
	}
	if grouped == 0 {
		t.Fatal("no commit rode another's fsync")
	}
	if syncs >= goroutines*perG {
		t.Fatalf("%d fsyncs for %d commits: group commit not batching", syncs, goroutines*perG)
	}
	// "Crash": close the fd without the WAL's graceful flush.
	w.file.Close()
	entries, err := ReplayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	for _, e := range entries {
		seen[e.Key] = true
	}
	for txn := 1; txn <= goroutines*perG; txn++ {
		if !seen[int64(txn)] {
			t.Fatalf("committed txn %d missing after replay (%d entries)", txn, len(entries))
		}
	}
}

// TestWALReplayInterleavedTxns checks that recovery is atomic per
// transaction when records from concurrent transactions interleave in the
// log: a commit record must only commit its own transaction's records.
func TestWALReplayInterleavedTxns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := openWAL(vfs.OS(), path, WALConfig{Policy: FlushEachCommit})
	if err != nil {
		t.Fatal(err)
	}
	// txn 1 and txn 2 interleave; txn 2 commits first; txn 3 never commits.
	w.Append(recPut, 1, 1, 100, []byte("t1-a"))
	w.Append(recPut, 2, 1, 200, []byte("t2-a"))
	w.Append(recPut, 3, 1, 300, []byte("t3-uncommitted"))
	w.Append(recPut, 1, 1, 101, []byte("t1-b"))
	w.Commit(2)
	w.Commit(1)
	w.mu.Lock()
	w.writeLocked()
	w.mu.Unlock()
	w.file.Close()

	entries, err := ReplayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("replayed %d entries, want 3: %+v", len(entries), entries)
	}
	// Commit order: txn 2's record first, then txn 1's two in append order.
	if entries[0].Key != 200 || entries[1].Key != 100 || entries[2].Key != 101 {
		t.Fatalf("wrong commit-order grouping: %+v", entries)
	}
	for _, e := range entries {
		if e.Key == 300 {
			t.Fatal("uncommitted txn 3 leaked into replay")
		}
	}
}

// --- sharded buffer pool ----------------------------------------------------

func TestBufferPoolInstanceClamping(t *testing.T) {
	pg := testPager(t)
	cases := []struct {
		frames, instances, want int
	}{
		{256, 0, 1},    // zero/unspecified -> one instance (legacy behaviour)
		{256, 4, 4},    // plenty of frames per instance
		{256, 100, 32}, // capped so every instance keeps >= 8 frames
		{16, 8, 2},     // shrunk: 16 frames can only feed 2 instances
		{8, 16, 1},     // tiny pool -> single instance
	}
	for _, c := range cases {
		pool := newBufferPool(pg, BufferPoolConfig{Frames: c.frames, Instances: c.instances})
		if got := pool.Instances(); got != c.want {
			t.Errorf("frames=%d instances=%d: got %d want %d", c.frames, c.instances, got, c.want)
		}
		pool.Close()
	}
}

// TestBufferPoolShardedIntegrity pushes pages through a multi-instance pool
// and checks that content, eviction and aggregate stats behave exactly like
// the single-instance pool.
func TestBufferPoolShardedIntegrity(t *testing.T) {
	pg := testPager(t)
	pool := newBufferPool(pg, BufferPoolConfig{Frames: 32, Instances: 4})
	defer pool.Close()

	ids := make([]PageID, 128)
	for i := range ids {
		ids[i] = pg.allocate()
		p, err := pool.Fetch(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		p.latch.Lock()
		p.data[0] = byte(i)
		p.data[1] = byte(i >> 8)
		p.latch.Unlock()
		pool.Unpin(p, true)
	}
	// 128 pages through a 32-frame pool: every instance evicted and flushed.
	_, misses, flushes, evictions := pool.Stats()
	if misses != 128 {
		t.Fatalf("misses %d want 128", misses)
	}
	if evictions < 96 || flushes < 96 {
		t.Fatalf("evictions %d flushes %d", evictions, flushes)
	}
	if pool.Len() > 32 {
		t.Fatalf("resident %d exceeds capacity", pool.Len())
	}
	// All content survives eviction round-trips.
	for i, id := range ids {
		p, err := pool.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		p.latch.RLock()
		b0, b1 := p.data[0], p.data[1]
		p.latch.RUnlock()
		pool.Unpin(p, false)
		if b0 != byte(i) || b1 != byte(i>>8) {
			t.Fatalf("page %d content lost: %d %d", i, b0, b1)
		}
	}
}

// TestBufferPoolShardedConcurrent hammers a sharded pool from many
// goroutines; run under -race this exercises the per-instance locking.
func TestBufferPoolShardedConcurrent(t *testing.T) {
	pg := testPager(t)
	pool := newBufferPool(pg, BufferPoolConfig{Frames: 64, Instances: 8})
	defer pool.Close()
	ids := make([]PageID, 256)
	for i := range ids {
		ids[i] = pg.allocate()
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := ids[(g*131+i*17)%len(ids)]
				p, err := pool.Fetch(id)
				if err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					p.latch.Lock()
					p.data[2] = byte(g)
					p.latch.Unlock()
					pool.Unpin(p, true)
				} else {
					p.latch.RLock()
					_ = p.data[2]
					p.latch.RUnlock()
					pool.Unpin(p, false)
				}
			}
		}(g)
	}
	wg.Wait()
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
}

// --- plan cache -------------------------------------------------------------

func TestTemplateKeyNormalization(t *testing.T) {
	a := templateKey("SELECT c FROM sbtest3 WHERE id = 71")
	b := templateKey("SELECT c FROM sbtest12 WHERE id = 9004")
	if a != b {
		t.Fatalf("same template shape got different keys:\n%q\n%q", a, b)
	}
	if want := "SELECT c FROM sbtest? WHERE id = ?"; a != want {
		t.Fatalf("key %q want %q", a, want)
	}
	if templateKey("DELETE FROM sbtest1 WHERE id = 5") == a {
		t.Fatal("different statements collided")
	}
}

func TestPlanCacheHitsAndSharing(t *testing.T) {
	db := testDB(t, nil)
	ex := NewExecutor(db, 1000)
	if err := ex.Load("sbtest", 1000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := ex.Exec(fmt.Sprintf("SELECT c FROM sbtest1 WHERE id = %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := ex.PlanCacheStats()
	if misses != 1 {
		t.Fatalf("50 executions of one template: %d misses, want 1", misses)
	}
	if hits != 49 {
		t.Fatalf("hits %d want 49", hits)
	}
	if ex.plans.Len() != 1 {
		t.Fatalf("cached templates %d want 1", ex.plans.Len())
	}
	// A clone shares the warmed cache: its executions are hits immediately.
	clone := ex.Clone()
	if _, err := clone.Exec("SELECT c FROM sbtest99 WHERE id = 7"); err != nil {
		t.Fatal(err)
	}
	hits2, misses2 := clone.PlanCacheStats()
	if misses2 != misses {
		t.Fatalf("clone missed on a warmed template: %d -> %d", misses, misses2)
	}
	if hits2 != hits+1 {
		t.Fatalf("clone hit not counted: %d -> %d", hits, hits2)
	}
	// Parse errors are not cached.
	if _, err := ex.Exec("DROP TABLE x"); err == nil {
		t.Fatal("unsupported statement accepted")
	}
	if ex.plans.Len() != 1 {
		t.Fatal("failed statement was cached")
	}
}

// TestPlanCacheConcurrentExecutors runs cloned executors from many
// goroutines against the shared cache (under -race this checks the
// read-mostly locking).
func TestPlanCacheConcurrentExecutors(t *testing.T) {
	db := testDB(t, nil)
	ex := NewExecutor(db, 500)
	if err := ex.Load("sbtest", 500); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			exw := ex.Clone()
			for i := 0; i < 200; i++ {
				var sql string
				switch i % 3 {
				case 0:
					sql = fmt.Sprintf("SELECT c FROM sbtest%d WHERE id = %d", g, i)
				case 1:
					sql = fmt.Sprintf("UPDATE sbtest%d SET k = k + 1 WHERE id = %d", g, i)
				default:
					sql = fmt.Sprintf("SELECT c FROM sbtest%d WHERE id BETWEEN %d AND %d", g, i, i+10)
				}
				if _, err := exw.Exec(sql); err != nil {
					t.Errorf("%s: %v", sql, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := ex.plans.Len(); n != 3 {
		t.Fatalf("cached templates %d want 3", n)
	}
}

// --- pacer ------------------------------------------------------------------

// TestTokenBucketDeliversRate verifies the accumulator pacer delivers
// rate×duration tokens within 1% for awkward rate/step combinations — the
// previous integer-truncating pacer under-delivered by up to ~50% when the
// per-request interval did not divide the tick.
func TestTokenBucketDeliversRate(t *testing.T) {
	for _, rate := range []float64{800, 4800, 12000, 150000, 333333} {
		for _, step := range []time.Duration{200 * time.Microsecond, 217 * time.Microsecond, 1310 * time.Microsecond} {
			tb := tokenBucket{rate: rate}
			total := 0
			var elapsed time.Duration
			for elapsed = 0; elapsed < time.Second; elapsed += step {
				total += tb.take(step)
			}
			want := rate * elapsed.Seconds()
			if diff := math.Abs(float64(total) - want); diff > want*0.01 {
				t.Errorf("rate %.0f step %v: delivered %d want %.0f (%.2f%% off)",
					rate, step, total, want, diff/want*100)
			}
		}
	}
	// Zero and negative elapsed deliver nothing.
	tb := tokenBucket{rate: 1000}
	if tb.take(0) != 0 || tb.take(-time.Second) != 0 {
		t.Fatal("non-positive elapsed must deliver no tokens")
	}
}
