package minidb

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// LockManager provides row-level exclusive locks with InnoDB-style
// spin-then-sleep acquisition: a contended acquire busy-polls up to
// SyncSpinLoops rounds (pausing up to SpinWaitDelay iterations between
// polls) before parking on a channel. Spinning burns CPU to shave wake-up
// latency — exactly the trade-off the paper's Figure 7 tunes.
type LockManager struct {
	shards [64]lockShard
	// SpinWaitDelay and SyncSpinLoops mirror the MySQL knobs.
	SpinWaitDelay int
	SyncSpinLoops int

	waits, spins atomic.Uint64

	// Telemetry counters; nil unless a live recorder is attached.
	obsWaits, obsSpins obs.Counter
}

type lockShard struct {
	mu    sync.Mutex
	locks map[uint64]*rowLock
}

type rowLock struct {
	held    bool
	waiters []chan struct{}
}

// NewLockManager returns a manager with the given spin knobs.
func NewLockManager(spinWaitDelay, syncSpinLoops int) *LockManager {
	lm := &LockManager{SpinWaitDelay: spinWaitDelay, SyncSpinLoops: syncSpinLoops}
	for i := range lm.shards {
		lm.shards[i].locks = make(map[uint64]*rowLock)
	}
	return lm
}

// setRecorder attaches telemetry counters for contended waits and spin
// rounds. Telemetry only — acquisition order never depends on it.
func (lm *LockManager) setRecorder(rec obs.Recorder) {
	if rec.Enabled() {
		lm.obsWaits = rec.Counter("minidb.locks.waits")
		lm.obsSpins = rec.Counter("minidb.locks.spins")
	}
}

func (lm *LockManager) shard(id uint64) *lockShard {
	return &lm.shards[id%uint64(len(lm.shards))]
}

// tryAcquire attempts a non-blocking acquire.
func (lm *LockManager) tryAcquire(id uint64) bool {
	s := lm.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.locks[id]
	if !ok {
		s.locks[id] = &rowLock{held: true}
		return true
	}
	if !l.held {
		l.held = true
		return true
	}
	return false
}

// Acquire takes the exclusive lock on a row, spinning first.
func (lm *LockManager) Acquire(id uint64) {
	if lm.tryAcquire(id) {
		return
	}
	lm.waits.Add(1)
	if lm.obsWaits != nil {
		lm.obsWaits.Add(1)
	}

	// Spin phase.
	for round := 0; round < lm.SyncSpinLoops; round++ {
		lm.spins.Add(1)
		if lm.obsSpins != nil {
			lm.obsSpins.Add(1)
		}
		// PAUSE-like delay: up to SpinWaitDelay busy iterations.
		for d := 0; d < lm.SpinWaitDelay; d++ {
			runtime.Gosched() // keep the spin preemptible
		}
		if lm.tryAcquire(id) {
			return
		}
	}

	// Sleep phase: park on a waiter channel.
	for {
		s := lm.shard(id)
		s.mu.Lock()
		l := s.locks[id]
		if l == nil {
			s.locks[id] = &rowLock{held: true}
			s.mu.Unlock()
			return
		}
		if !l.held {
			l.held = true
			s.mu.Unlock()
			return
		}
		ch := make(chan struct{})
		l.waiters = append(l.waiters, ch)
		s.mu.Unlock()
		select {
		case <-ch:
		case <-time.After(50 * time.Millisecond):
			// Timed backoff guards against missed wake-ups. Deregister
			// before looping: a stale channel left in the waiter list would
			// swallow a future Release's wake-up, stalling a real waiter for
			// a full backoff period.
			lm.abandonWaiter(id, ch)
		}
	}
}

// abandonWaiter removes ch from the waiter list after its owner stopped
// listening. If ch is no longer listed, Release already popped and closed
// it — the wake-up belongs to the abandoning goroutine, which will not use
// it, so it is handed to the next waiter instead of being dropped.
func (lm *LockManager) abandonWaiter(id uint64, ch chan struct{}) {
	s := lm.shard(id)
	s.mu.Lock()
	if l := s.locks[id]; l != nil {
		for i, w := range l.waiters {
			if w == ch {
				l.waiters = append(l.waiters[:i], l.waiters[i+1:]...)
				s.mu.Unlock()
				return
			}
		}
	}
	s.mu.Unlock()
	lm.wakeOne(id)
}

// wakeOne passes a wake-up to the next waiter if the lock is free.
func (lm *LockManager) wakeOne(id uint64) {
	s := lm.shard(id)
	s.mu.Lock()
	var wake chan struct{}
	if l := s.locks[id]; l != nil && !l.held && len(l.waiters) > 0 {
		wake = l.waiters[0]
		l.waiters = l.waiters[1:]
	}
	s.mu.Unlock()
	if wake != nil {
		close(wake)
	}
}

// Release drops the lock and wakes one waiter.
func (lm *LockManager) Release(id uint64) {
	s := lm.shard(id)
	s.mu.Lock()
	l := s.locks[id]
	if l == nil {
		s.mu.Unlock()
		return
	}
	l.held = false
	var wake chan struct{}
	if len(l.waiters) > 0 {
		wake = l.waiters[0]
		l.waiters = l.waiters[1:]
	} else {
		delete(s.locks, id)
	}
	s.mu.Unlock()
	if wake != nil {
		close(wake)
	}
}

// Stats reports contended waits and spin rounds.
func (lm *LockManager) Stats() (waits, spins uint64) {
	return lm.waits.Load(), lm.spins.Load()
}
