package minidb

import (
	"errors"
	"testing"

	"repro/internal/vfs"
)

// Regression tests for the I/O error-path audit: a failed write, sync,
// truncate or rename must surface to the caller, and failures that leave
// in-memory state ahead of (or behind) durable state must poison the
// component so later operations cannot silently build on a broken log or
// pool. Each test pins one audited path using targeted vfs fault injection.

// TestWALWriteErrorSticky: a WAL flush failure must fail the commit AND
// poison the log — after the device "recovers", later appends must still be
// refused, because buffered records were lost and the LSN sequence no
// longer matches what reached the file.
func TestWALWriteErrorSticky(t *testing.T) {
	fs := vfs.NewFaultFS(vfs.FaultConfig{})
	w, err := openWAL(fs, "wal.log", WALConfig{BufferBytes: 1 << 16, Policy: FlushEachCommit})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(recPut, 1, 1, 10, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(1); err != nil {
		t.Fatal(err)
	}

	fs.SetErr(vfs.OpWrite, -1)
	if err := w.Append(recPut, 2, 1, 11, []byte("b")); err != nil {
		t.Fatal(err) // buffered, no I/O yet
	}
	if err := w.Commit(2); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("commit during write failure = %v, want ErrInjected", err)
	}

	fs.SetErr(vfs.OpWrite, 0) // device recovers; the log must not
	if err := w.Append(recPut, 3, 1, 12, []byte("c")); err == nil {
		t.Fatal("append after flush failure succeeded; the WAL must stay poisoned")
	}
	if err := w.Commit(3); err == nil {
		t.Fatal("commit after flush failure succeeded; the WAL must stay poisoned")
	}
}

// TestWALSyncErrorSticky: same contract for a failed fsync — the commit
// must not be acknowledged and the log stays poisoned (fsyncgate: a sync
// failure may have dropped the dirty range, so retrying cannot help).
func TestWALSyncErrorSticky(t *testing.T) {
	fs := vfs.NewFaultFS(vfs.FaultConfig{})
	w, err := openWAL(fs, "wal.log", WALConfig{BufferBytes: 1 << 16, Policy: FlushEachCommit})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(recPut, 1, 1, 10, []byte("a")); err != nil {
		t.Fatal(err)
	}
	fs.SetErr(vfs.OpSync, -1)
	if err := w.Commit(1); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("commit during sync failure = %v, want ErrInjected", err)
	}
	fs.SetErr(vfs.OpSync, 0)
	if err := w.Append(recPut, 2, 1, 11, []byte("b")); err == nil {
		t.Fatal("append after sync failure succeeded; the WAL must stay poisoned")
	}
}

// TestPagerWriteSurfacesDoublewriteErrors: every step of the doublewrite
// protocol (slot write, slot sync, home write) must propagate its failure.
func TestPagerWriteSurfacesDoublewriteErrors(t *testing.T) {
	var data [PageSize]byte
	data[0] = nodeLeaf

	for _, tc := range []struct {
		name string
		op   vfs.Op
	}{
		{"write", vfs.OpWrite},
		{"sync", vfs.OpSync},
	} {
		fs := vfs.NewFaultFS(vfs.FaultConfig{})
		pg, err := newPager(fs, "data.mdb", "dblwr.mdb", true)
		if err != nil {
			t.Fatal(err)
		}
		id := pg.allocate()
		fs.SetErr(tc.op, -1)
		if err := pg.write(id, &data); !errors.Is(err, vfs.ErrInjected) {
			t.Errorf("%s failure: pager.write = %v, want ErrInjected", tc.name, err)
		}
		fs.SetErr(tc.op, 0)
		if err := pg.close(); err != nil {
			t.Errorf("%s failure: close: %v", tc.name, err)
		}
	}
}

// TestEvictionWriteErrorPropagates: when fetching a page forces the
// eviction of a dirty victim and the victim's flush fails, the fetch must
// fail — not hand out a page while silently dropping the victim's data.
func TestEvictionWriteErrorPropagates(t *testing.T) {
	fs := vfs.NewFaultFS(vfs.FaultConfig{})
	pg, err := newPager(fs, "data.mdb", "dblwr.mdb", false)
	if err != nil {
		t.Fatal(err)
	}
	pool := newBufferPool(pg, BufferPoolConfig{Frames: 8, Instances: 1})

	var ids []PageID
	for i := 0; i < 8; i++ {
		ids = append(ids, pg.allocate())
	}
	for _, id := range ids {
		p, err := pool.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		p.data[0] = nodeLeaf
		pool.Unpin(p, true)
	}

	fs.SetErr(vfs.OpWrite, -1)
	if _, err := pool.Fetch(pg.allocate()); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("fetch over failing eviction = %v, want ErrInjected", err)
	}
	fs.SetErr(vfs.OpWrite, 0)
	if err := pool.FlushAll(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCleanerWriteErrorPoisonsPool: the background cleaner has no caller to
// report to, so its flush failure must be latched and surfaced by the next
// foreground fetch and by FlushAll.
func TestCleanerWriteErrorPoisonsPool(t *testing.T) {
	fs := vfs.NewFaultFS(vfs.FaultConfig{})
	pg, err := newPager(fs, "data.mdb", "dblwr.mdb", false)
	if err != nil {
		t.Fatal(err)
	}
	pool := newBufferPool(pg, BufferPoolConfig{Frames: 8, Instances: 1})
	id := pg.allocate()
	p, err := pool.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	p.data[0] = nodeLeaf
	pool.Unpin(p, true)

	fs.SetErr(vfs.OpWrite, -1)
	pool.CleanPass(8, 8) // swallows the error into the instance's ioErr
	fs.SetErr(vfs.OpWrite, 0)

	if _, err := pool.Fetch(id); err == nil {
		t.Fatal("fetch after cleaner flush failure succeeded; pool must be poisoned")
	}
	if err := pool.FlushAll(); err == nil {
		t.Fatal("FlushAll after cleaner flush failure succeeded; pool must be poisoned")
	}
}

// TestCloseSurfacesCatalogRenameError: the catalog save's atomic rename is
// the last step of Close — its failure must be reported, and because the
// WAL is only reset after a successful checkpoint, no committed data may be
// lost: a reopen from the crash image must still recover everything.
func TestCloseSurfacesCatalogRenameError(t *testing.T) {
	fs := vfs.NewFaultFS(vfs.FaultConfig{})
	cfg := crashConfig(fs)
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := db.Put("t", 1, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	fs.SetErr(vfs.OpRename, -1)
	if err := db.Close(); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("close during rename failure = %v, want ErrInjected", err)
	}

	img := fs.CrashImage(fs.Ops(), vfs.DropUnsynced, 0)
	db2, err := Open(crashConfig(vfs.NewFaultFSFromImage(img, vfs.FaultConfig{})))
	if err != nil {
		t.Fatalf("reopen after failed close: %v", err)
	}
	defer db2.Close()
	v, ok, err := db2.Get("t", 1)
	if err != nil || !ok || string(v) != "keep" {
		t.Fatalf("committed row lost across failed close: %q %v %v", v, ok, err)
	}
}

// TestWALTruncateErrorSurfaces: recovery's torn-tail truncation must
// propagate an injected truncate failure instead of replaying a log it
// could not repair.
func TestWALTruncateErrorSurfaces(t *testing.T) {
	fs := vfs.NewFaultFS(vfs.FaultConfig{})
	w, err := openWAL(fs, "wal.log", WALConfig{BufferBytes: 1 << 16, Policy: FlushEachCommit})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(recPut, 1, 1, 10, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(1); err != nil {
		t.Fatal(err)
	}
	fs.SetErr(vfs.OpTruncate, -1)
	if err := w.Reset(); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("reset during truncate failure = %v, want ErrInjected", err)
	}
}
