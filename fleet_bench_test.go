package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dbsim"
	"repro/internal/knobs"
	"repro/internal/meta"
	"repro/internal/workload"
)

func fleetBenchSpace() *knobs.Space         { return knobs.CaseStudySpace() }
func fleetBenchWorkload() workload.Workload { return workload.Twitter() }

// replayLatencyEvaluator models the production iteration profile: workload
// replay is a round-trip to a database instance and dominates wall time
// (the paper's Table 3 puts replay far above every tuner-side stage), so a
// fleet scales by overlapping many sessions' replay waits on a small worker
// pool. The sleep stands in for the replay round-trip; the wrapped
// simulator still produces the actual measurement.
type replayLatencyEvaluator struct {
	core.Evaluator
	delay time.Duration
}

func (e replayLatencyEvaluator) Measure(native []float64) dbsim.Measurement {
	time.Sleep(e.delay)
	return e.Evaluator.Measure(native)
}

// fleetBenchSpecs builds one fleet: nSessions sessions over a fresh shared
// corpus, each with its own seed, RNG stream, corpus view and evaluator.
// Tuner-side compute is kept deliberately small (tiny acquisition budget,
// few posterior samples) so the benchmark isolates scheduling: replay
// latency dominates, as in production.
func fleetBenchSpecs(nSessions, nTasks, iters int, delay time.Duration) ([]core.SessionSpec, *meta.SharedCorpus) {
	space := fleetBenchSpace()
	tasks := meta.SyntheticCorpus(nTasks, 5, space.Dim(), 8, 42)
	sc := meta.NewSharedCorpus(tasks, nil)
	specs := make([]core.SessionSpec, nSessions)
	for s := 0; s < nSessions; s++ {
		seed := int64(100 + s)
		cfg := core.DefaultConfig(seed)
		cfg.InitIters = 2
		cfg.DynamicSamples = 10
		cfg.Acq.RandomCandidates = 32
		cfg.Acq.LocalStarts = 1
		cfg.Acq.LocalSteps = 5
		cfg.Acq.StepScale = 0.1
		cfg.TargetMetaFeature = []float64{0.4, 0.3, 0.5, 0.2, 0.7}
		cfg.Corpus = sc.NewSession(meta.CorpusOptions{})
		sim := dbsim.New(dbsim.Instance("A"), fleetBenchWorkload().Profile, seed,
			dbsim.WithHalfRAMBufferPool())
		specs[s] = core.SessionSpec{
			Name:      fmt.Sprintf("s%d", s),
			Config:    cfg,
			Evaluator: replayLatencyEvaluator{core.NewSimEvaluator(sim, space, dbsim.CPUPct), delay},
			Iters:     iters,
		}
	}
	return specs, sc
}

// BenchmarkFleetSessions is the fleet-scaling acceptance benchmark
// (BENCH_fleet.json via scripts/bench_snapshot.sh fleet): 8 concurrent
// sessions over one shared 8-task corpus, at 1, 4 and 8 workers. The gates
// scripts/benchcheck -fleet enforces on the committed snapshot: >= 3x
// session throughput at 8 workers vs 1, and a shared-fit cache hit rate
// above 50% (8 sessions x 8 task requests, only 8 fits run).
func BenchmarkFleetSessions(b *testing.B) {
	const (
		nSessions = 8
		nTasks    = 8
		iters     = 4
		delay     = 20 * time.Millisecond
	)
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var hits, misses uint64
			sessionsRun := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				specs, sc := fleetBenchSpecs(nSessions, nTasks, iters, delay)
				for _, r := range core.NewFleet(core.FleetConfig{Workers: workers}).Run(specs) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
				h, m := sc.Stats()
				hits += h
				misses += m
				sessionsRun += nSessions
			}
			b.StopTimer()
			if el := b.Elapsed().Seconds(); el > 0 {
				b.ReportMetric(float64(sessionsRun)/el, "sessions/sec")
			}
			if hits+misses > 0 {
				b.ReportMetric(float64(hits)/float64(hits+misses), "hit_rate")
			}
		})
	}
}
