// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation (one testing.B benchmark per artifact, backed by the
// internal/experiments harness) plus microbenchmarks of the core machinery.
// Benchmarks run at reduced budgets; use cmd/restune-bench -full for the
// paper's complete protocol.
package repro

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/bo"
	"repro/internal/dbsim"
	"repro/internal/experiments"
	"repro/internal/gp"
	"repro/internal/knobs"
	"repro/internal/mat"
	"repro/internal/meta"
	"repro/internal/minidb"
	"repro/internal/workload"
	"repro/restune"
)

// benchParams keeps every experiment benchmark at a budget that finishes in
// seconds while exercising the full pipeline.
func benchParams() experiments.Params {
	return experiments.Params{
		Seed: 1, Iters: 10, RepoIters: 10, RepoWorkloadLimit: 4, Runs: 1,
		Acq: bo.OptimizerConfig{RandomCandidates: 64, LocalStarts: 2, LocalSteps: 8, StepScale: 0.1},
	}
}

// runExperiment is the shared body for the per-artifact benchmarks.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(id, benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Lines) == 0 {
			b.Fatalf("%s produced no output", id)
		}
	}
}

func BenchmarkFig1ResponseSurface(b *testing.B)  { runExperiment(b, "fig1") }
func BenchmarkTable3TimeBreakdown(b *testing.B)  { runExperiment(b, "table3") }
func BenchmarkFig3Efficiency(b *testing.B)       { runExperiment(b, "fig3") }
func BenchmarkFig4HardwareAdaption(b *testing.B) { runExperiment(b, "fig4") }
func BenchmarkTable4MoreInstances(b *testing.B)  { runExperiment(b, "table4") }
func BenchmarkFig5WorkloadAdaption(b *testing.B) { runExperiment(b, "fig5") }
func BenchmarkFig6CaseStudy(b *testing.B)        { runExperiment(b, "fig6") }
func BenchmarkTable5VariantStats(b *testing.B)   { runExperiment(b, "table5") }
func BenchmarkTable6BestConfigs(b *testing.B)    { runExperiment(b, "table6") }
func BenchmarkFig7SHAP(b *testing.B)             { runExperiment(b, "fig7") }
func BenchmarkFig8RequestRate(b *testing.B)      { runExperiment(b, "fig8") }
func BenchmarkTable7DataSize(b *testing.B)       { runExperiment(b, "table7") }
func BenchmarkFig9OtherResources(b *testing.B)   { runExperiment(b, "fig9") }
func BenchmarkTable8TCOCPU(b *testing.B)         { runExperiment(b, "table8") }
func BenchmarkTable9TCOMemory(b *testing.B)      { runExperiment(b, "table9") }

// ---------------------------------------------------------------------------
// Microbenchmarks of the core machinery.

// BenchmarkSimulatorEval measures one configuration evaluation — the unit
// of work every tuning iteration's replay performs in this substrate.
func BenchmarkSimulatorEval(b *testing.B) {
	w := workload.Sysbench(10)
	sim := dbsim.New(dbsim.Instance("A"), w.Profile, 1, dbsim.WithHalfRAMBufferPool())
	space := knobs.CPUSpace()
	native := dbsim.DefaultNative(space, dbsim.Instance("A"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sim.Eval(space, native)
	}
}

// BenchmarkGPFit measures fitting the three-output surrogate on a
// mid-session history (the Model Update stage of Table 3).
func BenchmarkGPFit(b *testing.B) {
	h := syntheticHistory(50, 14, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tri := bo.NewTriGP(14, 1)
		if err := tri.Fit(h); err != nil {
			b.Fatal(err)
		}
	}
}

// benchKernelMatrix builds the n×n SPD kernel-plus-noise matrix a GP.Fit
// factorizes, from a synthetic mid-session history.
func benchKernelMatrix(n, dim int, seed int64) *mat.Dense {
	h := syntheticHistory(n, dim, seed)
	k := gp.NewMatern52(1, 0.5)
	a := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, k.Eval(h[i].Theta, h[j].Theta))
		}
		a.Set(i, i, a.At(i, i)+0.01+1e-8)
	}
	return a
}

// BenchmarkCholAppend measures growing a factorization one bordered row at a
// time across a whole session (1..n), the incremental model-update path.
// The factor is reused across sessions (Reserve once, Reset per session),
// the way GP.appendPoint drives it — the append loop itself is
// allocation-free (TestCholAppendReservedAllocFree pins zero allocs/op).
// Compare against BenchmarkCholFullRefactor, which re-factorizes from
// scratch at every step the way the pre-incremental pipeline did.
func BenchmarkCholAppend(b *testing.B) {
	const n = 128
	a := benchKernelMatrix(n, 14, 4)
	var c mat.Cholesky
	c.Reserve(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset()
		for m := 0; m < n; m++ {
			if err := c.Append(a.Row(m)[:m+1]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCholFullRefactor measures the same session with a from-scratch
// O(m³) factorization per step — the baseline CholAppend replaces.
func BenchmarkCholFullRefactor(b *testing.B) {
	const n = 128
	a := benchKernelMatrix(n, 14, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var c mat.Cholesky
		for m := 1; m <= n; m++ {
			sub := mat.NewDense(m, m)
			for r := 0; r < m; r++ {
				copy(sub.Row(r), a.Row(r)[:m])
			}
			if err := c.Factor(sub); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkGPFitIncremental measures the per-iteration model update when the
// history grows by one point and the factorization is extended in place
// (O(n²)); BenchmarkGPFitFromScratch is the same update via a full refit.
func BenchmarkGPFitIncremental(b *testing.B) {
	h := syntheticHistory(100, 14, 5)
	xs, ys := h.Thetas(), h.Values(bo.Res)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := gp.New(gp.NewMatern52(1, 0.5), 0.01)
		if err := g.Fit(xs[:99], ys[:99]); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := g.Fit(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGPFitFromScratch is the n=100 full-refit baseline for
// BenchmarkGPFitIncremental.
func BenchmarkGPFitFromScratch(b *testing.B) {
	h := syntheticHistory(100, 14, 5)
	xs, ys := h.Thetas(), h.Values(bo.Res)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := gp.New(gp.NewMatern52(1, 0.5), 0.01)
		if err := g.Fit(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGPFitLongHistory is the long-history scaling benchmark behind
// the sparse-inference gate (scripts/benchcheck -gpscale): one full model
// update — conditioning plus a warm-iteration hyperparameter search — on a
// thousand-observation-class history, exact versus subset-of-data sparse
// (gp.DefaultSparseConfig: 256 anchors). The exact arm pays O(n³) per
// search candidate; the sparse arm pays one O(n·m) anchor selection plus
// O(m³) per candidate, and the gate pins sparse/n=2000 at ≤20% of
// exact/n=2000.
func BenchmarkGPFitLongHistory(b *testing.B) {
	cfg := gp.DefaultFitConfig()
	cfg.Candidates = 6 // warm-iteration search budget (core session RefitEvery path)
	for _, n := range []int{1000, 2000} {
		h := syntheticHistory(n, 12, 6)
		xs, ys := h.Thetas(), h.Values(bo.Res)
		for _, sparse := range []bool{false, true} {
			name := fmt.Sprintf("exact/n=%d", n)
			if sparse {
				name = fmt.Sprintf("sparse/n=%d", n)
			}
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					g := gp.New(gp.NewMatern52(1, 0.5), 0.01)
					if sparse {
						g.SetSparse(gp.DefaultSparseConfig())
					}
					if err := g.Fit(xs, ys); err != nil {
						b.Fatal(err)
					}
					gp.FitHyperparams(g, cfg, rand.New(rand.NewSource(9)))
				}
			})
		}
	}
}

// BenchmarkGPPredict measures one posterior evaluation.
func BenchmarkGPPredict(b *testing.B) {
	g := gp.New(gp.NewMatern52(1, 0.5), 0.01)
	h := syntheticHistory(100, 14, 2)
	if err := g.Fit(h.Thetas(), h.Values(bo.Res)); err != nil {
		b.Fatal(err)
	}
	x := h[0].Theta
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = g.Predict(x)
	}
}

// BenchmarkGPPredictNoAlloc asserts the steady-state allocation profile of
// the prediction hot path (~20k calls per tuning iteration): zero allocs/op
// once the pooled scratch is warm.
func BenchmarkGPPredictNoAlloc(b *testing.B) {
	g := gp.New(gp.NewMatern52(1, 0.5), 0.01)
	h := syntheticHistory(100, 14, 2)
	if err := g.Fit(h.Thetas(), h.Values(bo.Res)); err != nil {
		b.Fatal(err)
	}
	x := h[0].Theta
	g.Predict(x) // warm the pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = g.Predict(x)
	}
}

// BenchmarkOptimizeAcqParallel measures one full acquisition maximization
// (the Recommend stage of Table 3): 512 random probes plus 5 local-search
// starts over the constrained-EI surface of a mid-session surrogate, with
// both phases fanned out across GOMAXPROCS workers.
func BenchmarkOptimizeAcqParallel(b *testing.B) {
	tri := bo.NewTriGP(14, 1)
	if err := tri.Fit(syntheticHistory(50, 14, 3)); err != nil {
		b.Fatal(err)
	}
	cons := bo.Constraints{LambdaTps: 0, LambdaLat: 0}
	f := func(x []float64) float64 { return bo.CEI(tri, x, 0, cons) }
	cfg := bo.DefaultOptimizerConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rand.New(rand.NewSource(int64(i)))
		_ = bo.OptimizeAcq(f, 14, cfg, nil, r)
	}
}

// BenchmarkPredictBatch measures batched posterior inference at the
// acquisition operating point (n=100 history, one probe block): one
// cross-covariance block with hoisted kernel terms plus one blocked
// triangular solve for 64 candidates. Compare per-candidate cost against
// BenchmarkGPPredict (the point-wise path it replaces, bit for bit).
func BenchmarkPredictBatch(b *testing.B) {
	g := gp.New(gp.NewMatern52(1, 0.5), 0.01)
	h := syntheticHistory(100, 12, 2)
	if err := g.Fit(h.Thetas(), h.Values(bo.Res)); err != nil {
		b.Fatal(err)
	}
	X := syntheticHistory(64, 12, 6).Thetas()
	mu := make([]float64, len(X))
	va := make([]float64, len(X))
	g.PredictBatch(X, mu, va) // warm the workspace pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.PredictBatch(X, mu, va)
	}
}

// acqBenchSetup builds the ISSUE-specified acquisition benchmark scenario:
// n=100 observations, dim=12, 512 random candidates, with a small local
// search so the measured contrast is the probe-scoring phase both paths
// share. Returns the surrogate and optimizer config.
func acqBenchSetup(b *testing.B) (*bo.TriGP, bo.Constraints, float64, bo.OptimizerConfig) {
	b.Helper()
	tri := bo.NewTriGP(12, 1)
	if err := tri.Fit(syntheticHistory(100, 12, 3)); err != nil {
		b.Fatal(err)
	}
	cons := tri.RawConstraints(bo.SLA{LambdaTps: 9800, LambdaLat: 5.5})
	best := tri.Standardizer(bo.Res).Apply(55)
	cfg := bo.OptimizerConfig{RandomCandidates: 512, LocalStarts: 2, LocalSteps: 8, StepScale: 0.1}
	return tri, cons, best, cfg
}

// BenchmarkOptimizeAcqPointwise is the point-wise baseline for
// BenchmarkOptimizeAcqBatched: the same 512-candidate acquisition
// maximization scoring one CEI evaluation (three GP Predict calls) per probe.
func BenchmarkOptimizeAcqPointwise(b *testing.B) {
	tri, cons, best, cfg := acqBenchSetup(b)
	f := func(x []float64) float64 { return bo.CEI(tri, x, best, cons) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rand.New(rand.NewSource(int64(i)))
		_ = bo.OptimizeAcq(f, 12, cfg, nil, r)
	}
}

// BenchmarkOptimizeAcqBatched is the batched counterpart: probes scored
// block-at-a-time through CEIBatch over the TriGP batch path (shared
// cross-covariance blocks, blocked solves). Bit-identical recommendations to
// the point-wise baseline; the acceptance target is >= 2x its throughput.
func BenchmarkOptimizeAcqBatched(b *testing.B) {
	tri, cons, best, cfg := acqBenchSetup(b)
	f := func(x []float64) float64 { return bo.CEI(tri, x, best, cons) }
	fb := func(X [][]float64, out []float64) { bo.CEIBatch(tri, X, best, cons, out) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rand.New(rand.NewSource(int64(i)))
		_ = bo.OptimizeAcqBatch(f, fb, 12, cfg, nil, r)
	}
}

// BenchmarkCEI measures one constrained-acquisition evaluation.
func BenchmarkCEI(b *testing.B) {
	tri := bo.NewTriGP(14, 1)
	if err := tri.Fit(syntheticHistory(50, 14, 3)); err != nil {
		b.Fatal(err)
	}
	cons := bo.Constraints{LambdaTps: 0, LambdaLat: 0}
	x := make([]float64, 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bo.CEI(tri, x, 0, cons)
	}
}

// BenchmarkDynamicWeights measures the RGPE ranking-loss weight assignment
// over a 10-learner ensemble (the dynamic phase of the Model Update stage).
func BenchmarkDynamicWeights(b *testing.B) {
	var base []*meta.BaseLearner
	for i := 0; i < 10; i++ {
		bl, err := meta.NewBaseLearner(fmt.Sprintf("t%d", i), "w", "A", nil,
			syntheticHistory(30, 3, int64(i)), 3, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		base = append(base, bl)
	}
	target, err := meta.NewBaseLearner("target", "w", "A", nil,
		syntheticHistory(20, 3, 99), 3, 99)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = meta.DynamicWeights(base, target, 100, r)
	}
}

// BenchmarkMetaIteration measures one meta-learning iteration — dynamic
// RGPE weights plus ensemble scoring of a 64-candidate block — against
// synthetic corpus size, comparing the shortlisting corpus path (top-K
// nearest base tasks by meta-feature, exact fallback at small N) with the
// all-learners baseline that consults every task. The tentpole gate reads
// the N=1000 pair from BENCH_corpus.json: corpus per-iteration time must be
// at most 25% of baseline. At N=34 the corpus path takes the exact fallback
// and the two variants do identical work by construction.
func BenchmarkMetaIteration(b *testing.B) {
	for _, n := range []int{34, 100, 1000, 4000} {
		cb, err := experiments.NewCorpusBench(n, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("corpus/N=%d", n), func(b *testing.B) {
			if _, err := cb.CorpusIteration(0); err != nil { // warm lazy fits
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cb.CorpusIteration(i + 1); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("baseline/N=%d", n), func(b *testing.B) {
			cb.BaselineIteration(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cb.BaselineIteration(i + 1)
			}
		})
	}
}

// driftDayParams is the fixed budget of the simulated-day drift benchmark:
// one 24h timeline compressed into 48 measurements (30-minute steps), the
// same settings the committed BENCH_drift.json acceptance snapshot records.
func driftDayParams() experiments.Params {
	return experiments.Params{
		Seed: 1, Iters: 48, RepoIters: 10, Runs: 1,
		Acq: bo.OptimizerConfig{RandomCandidates: 64, LocalStarts: 2, LocalSteps: 8, StepScale: 0.1},
	}
}

// BenchmarkDriftSimulatedDay runs simulated days with the drift-aware
// tuner and the stationary baseline (paired RNG streams; only Config.Drift
// differs) and reports the SLA-violation count, the number of drift events
// and the worst-case adaptation span as custom metrics. Two profiles are
// gated: the diurnal day, where regime structure must make the aware tuner
// strictly better, and the gradual ramp, where the graduated (tier-1
// translating) response must at least not lose to the stationary baseline
// — the regression the pre-graduated hard reset exhibited. The committed
// BENCH_drift.json snapshot is the acceptance record for the drift gate:
// `scripts/benchcheck -drift` requires diurnal aware to violate the
// load-scaled SLA strictly less often than stationary, to fire at least
// one drift event, to re-converge within a bounded number of iterations
// after each event, and ramp aware to violate no more often than ramp
// stationary.
func BenchmarkDriftSimulatedDay(b *testing.B) {
	for _, profile := range []string{"diurnal", "ramp"} {
		for _, mode := range []struct {
			name  string
			aware bool
		}{{"aware", true}, {"stationary", false}} {
			b.Run(profile+"/"+mode.name, func(b *testing.B) {
				var st *experiments.DayStats
				for i := 0; i < b.N; i++ {
					var err error
					st, err = experiments.SimulatedDay(profile, driftDayParams(), mode.aware)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(st.Violations), "sla_violations")
				b.ReportMetric(float64(st.DriftEvents), "drift_events")
				b.ReportMetric(float64(st.AdaptMax), "max_adapt_iters")
			})
		}
	}
}

// BenchmarkFullTuningIteration measures one complete ResTune-w/o-ML
// iteration (model update + recommendation + replay) at a mid-session
// history size.
func BenchmarkFullTuningIteration(b *testing.B) {
	w := restune.Twitter()
	sim := restune.NewSimulator(restune.Instance("A"), w.Profile, 1, restune.WithHalfRAMBufferPool())
	ev := restune.NewEvaluator(sim, restune.CPUKnobs(), restune.CPU)
	cfg := restune.DefaultConfig(1)
	cfg.Acq = bo.OptimizerConfig{RandomCandidates: 128, LocalStarts: 3, LocalSteps: 10, StepScale: 0.1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := restune.New(cfg).Run(ev, 15); err != nil {
			b.Fatal(err)
		}
	}
}

func syntheticHistory(n, dim int, seed int64) bo.History {
	r := rand.New(rand.NewSource(seed))
	var h bo.History
	for i := 0; i < n; i++ {
		x := make([]float64, dim)
		s := 0.0
		for d := range x {
			x[d] = r.Float64()
			s += (x[d] - 0.4) * (x[d] - 0.4)
		}
		h = append(h, bo.Observation{
			Theta: x,
			Res:   50 + 30*s + r.NormFloat64(),
			Tps:   10000 - 500*s + 10*r.NormFloat64(),
			Lat:   5 + s + 0.05*r.NormFloat64(),
		})
	}
	return h
}

// ---------------------------------------------------------------------------
// Real-engine (minidb) microbenchmarks.

func benchEngine(b *testing.B) (*minidb.DB, *minidb.Executor) {
	b.Helper()
	cfg := minidb.DefaultTestConfig(b.TempDir())
	db, err := minidb.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	ex := minidb.NewExecutor(db, 10000)
	if err := ex.Load("sbtest", 10000); err != nil {
		b.Fatal(err)
	}
	return db, ex
}

// BenchmarkEnginePointSelect measures real point reads through the SQL
// layer, buffer pool and B+tree.
func BenchmarkEnginePointSelect(b *testing.B) {
	_, ex := benchEngine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Exec(fmt.Sprintf("SELECT c FROM sbtest1 WHERE id = %d", i%10000)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineInsert measures logged, fsync-per-commit writes.
func BenchmarkEngineInsert(b *testing.B) {
	_, ex := benchEngine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stmt := fmt.Sprintf("INSERT INTO sbtest1 (id, k, c, pad) VALUES (%d, 1, 2, 3)", 20000+i)
		if _, err := ex.Exec(stmt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRangeScan measures 100-row range reads.
func BenchmarkEngineRangeScan(b *testing.B) {
	_, ex := benchEngine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := (i * 37) % 9000
		stmt := fmt.Sprintf("SELECT c FROM sbtest1 WHERE id BETWEEN %d AND %d", lo, lo+100)
		if _, err := ex.Exec(stmt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCommitGroup measures fsync-per-commit writes under 8-way commit
// pressure: with group commit, concurrent committers share one fsync, so
// per-op cost drops well below a lone fsync's latency.
func BenchmarkCommitGroup(b *testing.B) {
	cfg := minidb.DefaultTestConfig(b.TempDir())
	cfg.WAL.Policy = minidb.FlushEachCommit
	db, err := minidb.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTable("t"); err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 96)
	var key atomic.Int64
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			k := key.Add(1)
			if err := db.Put("t", k%4096, val); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBufferPoolSharded measures parallel point reads against a pool
// far smaller than the working set (all miss/eviction traffic), comparing a
// single-instance pool against an 8-way sharded one.
func BenchmarkBufferPoolSharded(b *testing.B) {
	for _, instances := range []int{1, 8} {
		b.Run(fmt.Sprintf("instances=%d", instances), func(b *testing.B) {
			cfg := minidb.DefaultTestConfig(b.TempDir())
			cfg.BufferPoolBytes = 64 * minidb.PageSize
			cfg.BufferPoolInstances = instances
			db, err := minidb.Open(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			ex := minidb.NewExecutor(db, 20000)
			if err := ex.Load("sbtest", 20000); err != nil {
				b.Fatal(err)
			}
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				r := rand.New(rand.NewSource(1))
				for pb.Next() {
					if _, _, err := db.Get("sbtest", int64(r.Intn(20000))); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkReplayWorkers measures aggregate sysbench replay throughput at 1
// and 8 workers — the evaluator's multi-worker measurement path. Workers
// share one plan cache via Executor.Clone.
func BenchmarkReplayWorkers(b *testing.B) {
	w := workload.Sysbench(10)
	stream := w.Generate(20000, rand.New(rand.NewSource(7)))
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := minidb.DefaultTestConfig(b.TempDir())
			db, err := minidb.Open(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			ex := minidb.NewExecutor(db, 2000)
			if err := ex.Load("sbtest", 2000); err != nil {
				b.Fatal(err)
			}
			for _, stmt := range w.Generate(64, rand.New(rand.NewSource(1))) {
				ex.Exec(stmt)
			}
			b.ResetTimer()
			var idx atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					exw := ex.Clone()
					for {
						i := idx.Add(1) - 1
						if i >= int64(b.N) {
							return
						}
						exw.Exec(stream[int(i)%len(stream)])
					}
				}()
			}
			wg.Wait()
		})
	}
}
