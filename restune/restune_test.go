package restune_test

import (
	"testing"

	"repro/restune"
)

// TestQuickstartFlow exercises the documented happy path end to end through
// the public API only.
func TestQuickstartFlow(t *testing.T) {
	w := restune.Twitter()
	sim := restune.NewSimulator(restune.Instance("A"), w.Profile, 1, restune.WithHalfRAMBufferPool())
	space := restune.MySQLKnobs().Subset(
		"innodb_thread_concurrency", "innodb_spin_wait_delay", "innodb_lru_scan_depth")
	ev := restune.NewEvaluator(sim, space, restune.CPU)

	cfg := restune.DefaultConfig(1)
	result, err := restune.New(cfg).Run(ev, 20)
	if err != nil {
		t.Fatal(err)
	}
	best, ok := result.BestFeasible()
	if !ok {
		t.Fatal("no feasible configuration")
	}
	if best.Res >= result.Iterations[0].Observation.Res {
		t.Fatal("tuning should improve on default")
	}
}

func TestPublicCataloguesAndWorkloads(t *testing.T) {
	if restune.CPUKnobs().Dim() != 14 || restune.MemoryKnobs().Dim() != 6 || restune.IOKnobs().Dim() != 20 {
		t.Fatal("knob space sizes")
	}
	if len(restune.Workloads()) != 5 {
		t.Fatal("five workloads")
	}
	if len(restune.Instances()) != 6 {
		t.Fatal("six instances")
	}
	if restune.TwitterVariant(3).Name != "twitter-w3" {
		t.Fatal("variant name")
	}
	if restune.Sysbench(10).Profile.Threads != 64 || restune.TPCC(200).Profile.Threads != 56 {
		t.Fatal("workload profiles")
	}
	if restune.Hotel().Profile.Threads != 256 || restune.Sales().Profile.Threads != 256 {
		t.Fatal("production workload profiles")
	}
}

func TestPublicBaselines(t *testing.T) {
	names := map[string]restune.Tuner{
		"Default":         restune.Default(),
		"iTuned":          restune.ITuned(1),
		"OtterTune-w-Con": restune.OtterTuneWithConstraints(1, nil),
		"CDBTune-w-Con":   restune.CDBTuneWithConstraints(1),
		"GridSearch":      restune.GridSearch(4),
	}
	for want, tuner := range names {
		if tuner.Name() != want {
			t.Errorf("tuner name %q want %q", tuner.Name(), want)
		}
	}
}

func TestPublicRepositoryFlow(t *testing.T) {
	w := restune.TwitterVariant(1)
	sim := restune.NewSimulator(restune.Instance("A"), w.Profile, 2, restune.WithHalfRAMBufferPool())
	space := restune.MySQLKnobs().Subset(
		"innodb_thread_concurrency", "innodb_spin_wait_delay", "innodb_lru_scan_depth")
	ev := restune.NewEvaluator(sim, space, restune.CPU)
	res, err := restune.New(restune.DefaultConfig(2)).Run(ev, 12)
	if err != nil {
		t.Fatal(err)
	}

	r := restune.NewRepository()
	r.Add(restune.TaskFromResult("t1", w.Name, "A", []float64{1, 0, 0, 0, 0}, space, res))
	base, err := r.BaseLearners(space, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 1 {
		t.Fatal("base learner count")
	}

	// Meta-boosted run through the public API.
	cfg := restune.DefaultConfig(3)
	cfg.Base = base
	cfg.TargetMetaFeature = []float64{1, 0, 0, 0, 0}
	target := restune.NewSimulator(restune.Instance("A"), restune.Twitter().Profile, 3, restune.WithHalfRAMBufferPool())
	res2, err := restune.New(cfg).Run(restune.NewEvaluator(target, space, restune.CPU), 12)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Method != "ResTune" {
		t.Fatal("meta-boosted method name")
	}
}

func TestPublicExperiments(t *testing.T) {
	ids := restune.ExperimentIDs()
	if len(ids) < 15 {
		t.Fatalf("experiment registry too small: %v", ids)
	}
	p := restune.QuickExperimentParams()
	p.Iters, p.RepoIters, p.RepoWorkloadLimit = 6, 6, 2
	rep, err := restune.RunExperiment("fig1", p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lines) == 0 || restune.ExperimentTitle("fig1") == "" {
		t.Fatal("report empty")
	}
	full := restune.FullExperimentParams()
	if full.Iters != 200 || full.Runs != 3 {
		t.Fatal("full protocol should match the paper")
	}
}
