package restune_test

import (
	"fmt"
	"log"
	"math/rand"

	"repro/restune"
)

// Example runs the minimal resource-oriented tuning session: minimize CPU
// for the Twitter workload under the SLA captured from the DBA default.
func Example() {
	w := restune.Twitter()
	sim := restune.NewSimulator(restune.Instance("A"), w.Profile, 42,
		restune.WithHalfRAMBufferPool())
	ev := restune.NewEvaluator(sim, restune.CPUKnobs(), restune.CPU)

	result, err := restune.New(restune.DefaultConfig(42)).Run(ev, 30)
	if err != nil {
		log.Fatal(err)
	}
	if best, ok := result.BestFeasible(); ok {
		fmt.Printf("improved CPU with the SLA held: %v\n",
			best.Res < result.Iterations[0].Observation.Res)
	}
	// Output: improved CPU with the SLA held: true
}

// ExampleNew_metaBoosted shows meta-learning: histories from related tasks
// become base-learners that bootstrap a new session.
func ExampleNew_metaBoosted() {
	space := restune.MySQLKnobs().Subset(
		"innodb_thread_concurrency", "innodb_spin_wait_delay", "innodb_lru_scan_depth")

	// A past tuning task on a related workload...
	past := restune.TwitterVariant(1)
	sim := restune.NewSimulator(restune.Instance("A"), past.Profile, 1,
		restune.WithHalfRAMBufferPool())
	history, err := restune.New(restune.DefaultConfig(1)).
		Run(restune.NewEvaluator(sim, space, restune.CPU), 15)
	if err != nil {
		log.Fatal(err)
	}

	// ...stored in the repository and loaded as base-learners.
	repo := restune.NewRepository()
	ch, err := restune.NewCharacterizer(restune.Workloads(), 1)
	if err != nil {
		log.Fatal(err)
	}
	mf := ch.MetaFeature(past, 2000, rand.New(rand.NewSource(1)))
	repo.Add(restune.TaskFromResult(past.Name, past.Name, "A", mf, space, history))
	base, err := repo.BaseLearners(space, 1, nil)
	if err != nil {
		log.Fatal(err)
	}

	// The new session starts from the transferred knowledge.
	cfg := restune.DefaultConfig(2)
	cfg.Base = base
	cfg.TargetMetaFeature = ch.MetaFeature(restune.Twitter(), 2000, rand.New(rand.NewSource(2)))
	tuner := restune.New(cfg)
	fmt.Println(tuner.Name())
	// Output: ResTune
}

// ExampleRunExperiment regenerates one of the paper's artifacts.
func ExampleRunExperiment() {
	p := restune.QuickExperimentParams()
	report, err := restune.RunExperiment("fig1", p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.ID, len(report.Series) > 0)
	// Output: fig1 true
}

// ExampleGridSearch runs the case study's exhaustive ground-truth search.
func ExampleGridSearch() {
	space := restune.MySQLKnobs().Subset(
		"innodb_thread_concurrency", "innodb_spin_wait_delay", "innodb_lru_scan_depth")
	w := restune.Twitter()
	sim := restune.NewSimulator(restune.Instance("A"), w.Profile, 3,
		restune.WithHalfRAMBufferPool())
	ev := restune.NewEvaluator(sim, space, restune.CPU)

	res, err := restune.GridSearch(4).Run(ev, 0) // 4^3 = 64 evaluations
	if err != nil {
		log.Fatal(err)
	}
	best, _ := res.BestFeasible()
	fmt.Println(len(res.Iterations) == 65, best.Res < res.Iterations[0].Observation.Res)
	// Output: true true
}
