// Package restune is the public API of the ResTune reproduction: resource-
// oriented DBMS knob tuning under SLA constraints, boosted by meta-learning
// (Zhang et al., SIGMOD 2021).
//
// The package re-exports the library's building blocks through stable
// aliases so downstream users never import internal paths:
//
//   - knob catalogues and configuration spaces (MySQLKnobs, CPUKnobs, ...),
//   - the simulated DBMS substrate standing in for MySQL RDS (NewSimulator,
//     Instance) together with the paper's workloads (Sysbench, TPCC,
//     Twitter, Hotel, Sales),
//   - the ResTune tuner (New) and every baseline from the paper's
//     evaluation (Default, ITuned, OtterTuneWithConstraints,
//     CDBTuneWithConstraints, GridSearch),
//   - the data repository and workload characterization used for
//     meta-learning (NewRepository, LoadRepository, NewCharacterizer), and
//   - the experiment harness regenerating every table and figure
//     (RunExperiment, ExperimentIDs).
//
// A minimal session:
//
//	w := restune.Twitter()
//	sim := restune.NewSimulator(restune.Instance("A"), w.Profile, 1,
//	    restune.WithHalfRAMBufferPool())
//	ev := restune.NewEvaluator(sim, restune.CPUKnobs(), restune.CPU)
//	tuner := restune.New(restune.DefaultConfig(1))
//	result, err := tuner.Run(ev, 50)
package restune

import (
	"io"
	"time"

	"repro/internal/baselines"
	"repro/internal/bo"
	"repro/internal/core"
	"repro/internal/dbsim"
	"repro/internal/experiments"
	"repro/internal/gp"
	"repro/internal/knobs"
	"repro/internal/meta"
	"repro/internal/minidb"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/repo"
	"repro/internal/workload"
)

// Re-exported types. Aliases keep the internal packages as the single
// source of truth while giving external importers stable names.
type (
	// Space is an ordered knob set defining the search space Θ.
	Space = knobs.Space
	// Knob describes one tunable configuration parameter.
	Knob = knobs.Knob
	// Hardware describes a database instance (cores, RAM, disk).
	Hardware = dbsim.Hardware
	// Simulator is the MySQL-like DBMS substrate every tuner measures
	// configurations against.
	Simulator = dbsim.Simulator
	// SimulatorOption configures a Simulator.
	SimulatorOption = dbsim.Option
	// Measurement is one replay's observed metrics.
	Measurement = dbsim.Measurement
	// Resource selects which utilization a session minimizes.
	Resource = dbsim.ResourceKind
	// Workload couples a query mix with its performance profile.
	Workload = workload.Workload
	// Characterizer embeds workloads as meta-feature vectors.
	Characterizer = workload.Characterizer
	// Observation is the (θ, res, tps, lat) four-tuple.
	Observation = bo.Observation
	// SLA holds the throughput/latency constraints.
	SLA = bo.SLA
	// Config parameterizes a ResTune session.
	Config = core.Config
	// Tuner is any tuning method (ResTune or a baseline).
	Tuner = core.Tuner
	// Evaluator is the database copy + replayer a session measures through.
	Evaluator = core.Evaluator
	// Result is a finished tuning session.
	Result = core.Result
	// Iteration is one recorded tuning step.
	Iteration = core.Iteration
	// Repository stores historical tuning tasks for meta-learning.
	Repository = repo.Repository
	// TaskRecord is one stored tuning task.
	TaskRecord = repo.TaskRecord
	// LazyRepository is a repository opened index-first: task histories are
	// decoded on demand, so open cost is proportional to the index, not the
	// corpus.
	LazyRepository = repo.LazyRepository
	// TaskMeta is the eagerly-resident metadata of one lazily-opened task.
	TaskMeta = repo.TaskMeta
	// BaseLearner is a fitted per-task surrogate used by the meta-learner.
	BaseLearner = meta.BaseLearner
	// Corpus manages base tasks at scale: ANN shortlisting, lazy surrogate
	// fits with an LRU residency cap, and pruning of persistently
	// zero-weighted learners (Config.Corpus).
	Corpus = meta.Corpus
	// CorpusTask is one shortlistable task: identity, meta-feature and a
	// deterministic deferred fit.
	CorpusTask = meta.CorpusTask
	// CorpusOptions tunes shortlist size, exact-fallback threshold, pruning
	// patience and surrogate residency.
	CorpusOptions = meta.CorpusOptions
	// SharedCorpus is the fleet-wide copy-on-write fit cache: one immutable
	// task list whose surrogate fits are computed once (single-flight) and
	// shared read-only across every session holding a view from NewSession.
	SharedCorpus = meta.SharedCorpus
	// Session is one resumable tuning session as a value: NewSession binds
	// it, Step advances it one iteration, Run steps it to completion. A
	// Fleet multiplexes many of them over a bounded worker pool.
	Session = core.Session
	// SessionSpec declares one fleet session: name, config, evaluator,
	// iteration budget.
	SessionSpec = core.SessionSpec
	// SessionResult is one fleet session's outcome, in spec order.
	SessionResult = core.SessionResult
	// Fleet runs many tuning sessions concurrently over a bounded worker
	// pool with deterministic per-session traces.
	Fleet = core.Fleet
	// FleetConfig sizes the fleet's worker pool and attaches its telemetry.
	FleetConfig = core.FleetConfig
	// AcquisitionConfig tunes acquisition-function optimization.
	AcquisitionConfig = bo.OptimizerConfig
	// WeightSchema selects the ensemble weight-assignment schema.
	WeightSchema = core.WeightSchema
	// ExperimentParams scales a paper-experiment run.
	ExperimentParams = experiments.Params
	// ExperimentReport is a paper-experiment's output.
	ExperimentReport = experiments.Report
	// DriftConfig parameterizes drift detection and safe trust-region
	// exploration for online tuning (Config.Drift).
	DriftConfig = core.DriftConfig
	// SparseConfig switches the GP surrogate to subset-of-data sparse
	// inference once a session's history exceeds its threshold
	// (Config.Sparse); the zero value keeps exact inference.
	SparseConfig = gp.SparseConfig
	// Timeline is a piecewise load schedule over a simulated day.
	Timeline = workload.Timeline
	// TimelinePhase is one named phase of a Timeline.
	TimelinePhase = workload.TimelinePhase
	// LoadPoint is the instantaneous load of a Timeline: a request-rate
	// multiplier and an additive write-ratio boost.
	LoadPoint = workload.LoadPoint
	// TimelineEvaluator drives a simulator through a Timeline with
	// time-compressed playback (implements Evaluator).
	TimelineEvaluator = core.TimelineEvaluator
	// DayStats summarizes one simulated-day tuning session: SLA violations,
	// drift events and adaptation speed.
	DayStats = experiments.DayStats
)

// Weight schemas (Config.Schema).
const (
	// AdaptiveSchema is the paper's design: static then dynamic weights.
	AdaptiveSchema = core.AdaptiveSchema
	// StaticOnlySchema keeps meta-feature weights for the whole session.
	StaticOnlySchema = core.StaticOnlySchema
	// DynamicOnlySchema uses ranking-loss weights from the first iteration.
	DynamicOnlySchema = core.DynamicOnlySchema
)

// PenaltyBO returns the penalty-method constrained-BO ablation tuner.
func PenaltyBO(seed int64) Tuner { return baselines.NewPenaltyBO(seed) }

// DefaultSparseConfig returns the default subset-of-data sparse-GP
// configuration (activation threshold 256 observations) for
// Config.Sparse. See DESIGN.md §14.
func DefaultSparseConfig() SparseConfig { return gp.DefaultSparseConfig() }

// Resource kinds.
const (
	// CPU minimizes database-wide CPU utilization (percent).
	CPU = dbsim.CPUPct
	// IOBandwidth minimizes disk bytes/second.
	IOBandwidth = dbsim.IOBps
	// IOOperations minimizes disk operations/second.
	IOOperations = dbsim.IOPS
	// Memory minimizes total DBMS memory.
	Memory = dbsim.MemoryBytes
)

// ---------------------------------------------------------------------------
// Knob catalogues.

// MySQLKnobs returns the full MySQL 5.7 knob catalogue.
func MySQLKnobs() *Space { return knobs.MySQL57Catalogue() }

// CPUKnobs returns the 14-knob CPU-tuning space.
func CPUKnobs() *Space { return knobs.CPUSpace() }

// RealEngineKnobs returns the subset of the catalogue the live minidb
// engine models — the space real-engine tuning runs should use.
func RealEngineKnobs() *Space { return knobs.RealEngineSpace() }

// MemoryKnobs returns the 6-knob memory-tuning space.
func MemoryKnobs() *Space { return knobs.MemorySpace() }

// IOKnobs returns the 20-knob IO-tuning space.
func IOKnobs() *Space { return knobs.IOSpace() }

// ---------------------------------------------------------------------------
// Hardware and simulator.

// Instance returns one of the paper's instance types A-F.
func Instance(name string) Hardware { return dbsim.Instance(name) }

// Instances returns all instance types keyed by name.
func Instances() map[string]Hardware { return dbsim.Instances() }

// NewSimulator builds the DBMS-under-tuning for a hardware/workload pair.
func NewSimulator(hw Hardware, profile dbsim.WorkloadProfile, seed int64, opts ...SimulatorOption) *Simulator {
	return dbsim.New(hw, profile, seed, opts...)
}

// WithHalfRAMBufferPool pins the buffer pool to half of RAM (the paper's
// CPU/IO-experiment setting).
func WithHalfRAMBufferPool() SimulatorOption { return dbsim.WithHalfRAMBufferPool() }

// WithFixedBufferPool pins the buffer pool to an explicit size.
func WithFixedBufferPool(bytes int64) SimulatorOption { return dbsim.WithFixedBufferPool(bytes) }

// WithNoise sets the relative measurement-noise standard deviation.
func WithNoise(std float64) SimulatorOption { return dbsim.WithNoise(std) }

// NewEvaluator adapts a simulator into the Evaluator a tuning session
// drives, minimizing the given resource over the knob space.
func NewEvaluator(sim *Simulator, space *Space, res Resource) Evaluator {
	return core.NewSimEvaluator(sim, space, res)
}

// ---------------------------------------------------------------------------
// Workloads.

// Sysbench returns the SYSBENCH workload at a data size in GB.
func Sysbench(sizeGB int) Workload { return workload.Sysbench(sizeGB) }

// TPCC returns the TPC-C workload at a warehouse count.
func TPCC(warehouses int) Workload { return workload.TPCC(warehouses) }

// Twitter returns the Twitter workload.
func Twitter() Workload { return workload.Twitter() }

// TwitterVariant returns the case-study variants W1..W5.
func TwitterVariant(i int) Workload { return workload.TwitterVariant(i) }

// Hotel returns the Hotel Booking production workload.
func Hotel() Workload { return workload.Hotel() }

// Sales returns the Sales production workload.
func Sales() Workload { return workload.Sales() }

// Workloads returns the paper's five evaluation workloads.
func Workloads() []Workload { return workload.Five() }

// NewCharacterizer trains the workload-characterization pipeline
// (reserved-word TF-IDF -> random forest -> meta-feature).
func NewCharacterizer(trainOn []Workload, seed int64) (*Characterizer, error) {
	return workload.NewCharacterizer(trainOn, seed)
}

// MetaFeatureDistance is the Euclidean distance between meta-features —
// the similarity measure behind the static weights.
func MetaFeatureDistance(a, b []float64) float64 { return workload.MetaFeatureDistance(a, b) }

// ---------------------------------------------------------------------------
// Timelines and drift-aware online tuning.

// NewTimeline builds a validated Timeline from explicit phases.
func NewTimeline(phases []TimelinePhase) (*Timeline, error) { return workload.NewTimeline(phases) }

// TimelineProfile returns a named built-in timeline: "diurnal" (a 24h
// night/ramp/business/peak day), "spike" (a flash-crowd burst), "ramp" (a
// day-long linear climb) or "flat" (the stationary control).
func TimelineProfile(name string) (*Timeline, error) { return workload.TimelineProfile(name) }

// TimelineFromCSV parses a load schedule from CSV rows of
// "offset_seconds,rate_mult[,write_boost]".
func TimelineFromCSV(r io.Reader) (*Timeline, error) { return workload.TimelineFromCSV(r) }

// NewTimelineEvaluator drives a simulator through a timeline with
// time-compressed playback: measurement k evaluates under the load at
// simulated time k*Total/stepsPerDay (wrapping past a day). Pair it with
// Config.Drift for drift-aware online tuning.
func NewTimelineEvaluator(sim *Simulator, space *Space, res Resource, w Workload, tl *Timeline, stepsPerDay int) *TimelineEvaluator {
	return core.NewTimelineEvaluator(sim, space, res, w, tl, stepsPerDay)
}

// SimulatedDay runs one tuning session over a named timeline profile
// compressed into p.Iters measurements — drift-aware when aware is set, the
// stationary tuner otherwise (restune-bench -timeline).
func SimulatedDay(profile string, p ExperimentParams, aware bool) (*DayStats, error) {
	return experiments.SimulatedDay(profile, p, aware)
}

// SimulatedDayTimeline is SimulatedDay over an explicit (e.g. CSV-loaded)
// timeline; name labels the timeline in the returned stats.
func SimulatedDayTimeline(name string, tl *Timeline, p ExperimentParams, aware bool) (*DayStats, error) {
	return experiments.SimulatedDayTimeline(name, tl, p, aware)
}

// ---------------------------------------------------------------------------
// Replay.

// Replayer replays a captured workload window against a database copy at
// the recorded request rate.
type Replayer = replay.Replayer

// TemplateCount is a query template with its observed frequency.
type TemplateCount = replay.TemplateCount

// ExtractTemplates reduces a SQL stream to its distinct templates (scalars
// and sharded identifiers normalized), most frequent first.
func ExtractTemplates(stream []string) []TemplateCount { return replay.ExtractTemplates(stream) }

// NewReplayer captures a window of the workload and prepares a replayer.
func NewReplayer(sim *Simulator, w Workload, sampleQueries int, window time.Duration, seed int64) *Replayer {
	return replay.New(sim, w, sampleQueries, window, seed)
}

// ---------------------------------------------------------------------------
// Tuners.

// DefaultConfig returns the paper's ResTune settings.
func DefaultConfig(seed int64) Config { return core.DefaultConfig(seed) }

// New builds a ResTune tuner. With Config.Base empty it is the
// ResTune-w/o-ML ablation; with base-learners it is full meta-boosted
// ResTune.
func New(cfg Config) Tuner { return core.New(cfg) }

// Default returns the Default baseline (DBA configuration re-measured).
func Default() Tuner { return baselines.DefaultOnly{} }

// ITuned returns the iTuned baseline (unconstrained GP + EI).
func ITuned(seed int64) Tuner { return baselines.NewITuned(seed) }

// OtterTuneWithConstraints returns the OtterTune-w-Con baseline over a
// historical task set.
func OtterTuneWithConstraints(seed int64, tasks []TaskRecord) Tuner {
	return baselines.NewOtterTuneWCon(seed, tasks)
}

// CDBTuneWithConstraints returns the CDBTune-w-Con baseline (DDPG with the
// paper's constrained reward).
func CDBTuneWithConstraints(seed int64) Tuner { return baselines.NewCDBTuneWCon(seed) }

// GridSearch returns an exhaustive grid-search tuner.
func GridSearch(pointsPerDim int) Tuner { return baselines.NewGridSearch(pointsPerDim) }

// ---------------------------------------------------------------------------
// Data repository and meta-learning.

// NewRepository returns an empty data repository.
func NewRepository() *Repository { return &Repository{} }

// LoadRepository reads a repository from JSON.
func LoadRepository(path string) (*Repository, error) { return repo.Load(path) }

// OpenLazyRepository opens a repository reading only its index segment;
// task histories decode on demand (v1 files fall back to an eager decode
// behind the same interface). Close it when the session is done.
func OpenLazyRepository(path string) (*LazyRepository, error) { return repo.OpenLazy(path) }

// NewCorpus builds a shortlisting corpus over explicit tasks. Repositories
// build one directly via (*Repository).Corpus / (*LazyRepository).Corpus.
func NewCorpus(tasks []CorpusTask, opts CorpusOptions) *Corpus { return meta.NewCorpus(tasks, opts) }

// NewSharedCorpus builds the fleet-wide single-flight fit cache over a task
// list (from SyntheticCorpus or a repository's CorpusTasks). Hand each
// concurrent session its own view via SharedCorpus.NewSession so N sessions
// over similar workloads pay ~1 surrogate fit per base task instead of N.
func NewSharedCorpus(tasks []CorpusTask, rec Recorder) *SharedCorpus {
	return meta.NewSharedCorpus(tasks, rec)
}

// NewSession binds a resumable tuning session without running anything: the
// probe, corpus activation and model fits all happen inside Step, so a
// scheduler can enqueue hundreds of sessions cheaply.
func NewSession(cfg Config, ev Evaluator, iters int) (*Session, error) {
	return core.NewSession(cfg, ev, iters)
}

// NewFleet returns the bounded-worker scheduler that multiplexes many
// sessions concurrently (cmd/restune-server is its CLI face). Sessions are
// stepped one iteration at a time and requeued, so a small worker pool
// overlaps many sessions' workload-replay waits; per-session traces stay
// bit-identical to solo runs.
func NewFleet(cfg FleetConfig) *Fleet { return core.NewFleet(cfg) }

// SyntheticCorpus generates n deterministic synthetic base tasks — the
// corpus behind restune-bench -corpus-size and BenchmarkMetaIteration.
func SyntheticCorpus(n, metaDim, dim, histLen int, seed int64) []CorpusTask {
	return meta.SyntheticCorpus(n, metaDim, dim, histLen, seed)
}

// TaskFromResult converts a finished session into a repository record.
func TaskFromResult(taskID, workloadName, hardwareName string, metaFeature []float64, space *Space, res *Result) TaskRecord {
	return repo.FromResult(taskID, workloadName, hardwareName, metaFeature, space, res)
}

// NewBaseLearner fits a base-learner directly from an observation history.
func NewBaseLearner(taskID, workloadName, hardwareName string, metaFeature []float64, h []Observation, dim int, seed int64) (*BaseLearner, error) {
	return meta.NewBaseLearner(taskID, workloadName, hardwareName, metaFeature, h, dim, seed)
}

// ---------------------------------------------------------------------------
// Real storage engine (minidb).

// EngineEvaluator measures configurations by real replays against minidb,
// the repository's compact storage engine (B+tree, buffer pool with LRU
// page cleaner, WAL, row locks, table cache). Unlike the simulator, its
// measurements are wall-clock throughput, sampled latency, getrusage CPU
// and physical IO counters.
type EngineEvaluator = minidb.Evaluator

// EngineConfig assembles the storage engine's tunables.
type EngineConfig = minidb.Config

// NewEngineEvaluator builds a real-engine evaluator: each Measure call
// opens a fresh engine under the candidate knobs, loads the dataset and
// replays the workload at its request rate.
func NewEngineEvaluator(baseDir string, space *Space, res Resource, w Workload, seed int64) *EngineEvaluator {
	return minidb.NewEvaluator(baseDir, space, res, w, seed)
}

// OpenEngine opens (or creates) a minidb instance directly.
func OpenEngine(cfg EngineConfig) (*minidb.DB, error) { return minidb.Open(cfg) }

// EngineConfigFromKnobs maps a native knob configuration onto engine
// parameters.
func EngineConfigFromKnobs(dir string, space *Space, native []float64) EngineConfig {
	return minidb.ConfigFromKnobs(dir, space, native)
}

// ---------------------------------------------------------------------------
// Observability.

// Recorder receives telemetry (spans, counters, gauges, histograms) from an
// instrumented component. It is always injected — through Config.Recorder,
// EngineConfig.Recorder, EngineEvaluator.Recorder or ExperimentParams.
// Recorder — never global, and never influences tuning decisions.
type Recorder = obs.Recorder

// TraceRecorder is a live Recorder streaming structured events as JSON
// Lines — the run artifact scripts/trace_summary.sh summarizes.
type TraceRecorder = obs.JSONL

// NopRecorder returns the recorder that records nothing (the default
// everywhere a Recorder is accepted).
func NopRecorder() Recorder { return obs.Nop }

// NewTraceRecorder returns a TraceRecorder writing JSONL events to w.
func NewTraceRecorder(w io.Writer) *TraceRecorder { return obs.NewJSONL(w) }

// NewTraceFile creates (truncating) a JSONL trace file at path. Close the
// returned recorder to flush the final metric snapshot.
func NewTraceFile(path string) (*TraceRecorder, error) { return obs.NewJSONLFile(path) }

// ServeDebug starts the opt-in debug HTTP endpoint (expvar at /debug/vars,
// a JSON metric snapshot at /debug/metrics, pprof under /debug/pprof/)
// backed by the recorder's metric registry. It returns the bound address
// and a shutdown func.
func ServeDebug(addr string, rec *TraceRecorder) (string, func() error, error) {
	return obs.ServeDebug(addr, rec.Registry)
}

// ---------------------------------------------------------------------------
// Paper experiments.

// QuickExperimentParams returns reduced budgets that keep the paper's
// experiment structure intact while running in minutes.
func QuickExperimentParams() ExperimentParams { return experiments.Quick() }

// FullExperimentParams returns the paper's protocol (200 iterations, 3
// runs, full repository).
func FullExperimentParams() ExperimentParams { return experiments.Full() }

// RunExperiment regenerates one of the paper's tables or figures by id
// ("fig1", "fig3"-"fig9", "table3"-"table9").
func RunExperiment(id string, p ExperimentParams) (*ExperimentReport, error) {
	return experiments.Run(id, p)
}

// ExperimentIDs lists the available experiment ids.
func ExperimentIDs() []string { return experiments.IDs() }

// CorpusScale measures per-iteration meta-learning cost against synthetic
// corpus size for the shortlisted and all-learners paths (restune-bench
// -corpus-size). It is not part of ExperimentIDs: the corpus sizes the
// scaling argument needs would dominate an -all run.
func CorpusScale(sizes []int, seed int64, iters int) (*ExperimentReport, error) {
	return experiments.CorpusScale(sizes, seed, iters)
}

// HistoryScale measures the per-iteration surrogate model-update cost of
// exact versus subset-of-data sparse GP inference at the given observation
// history lengths, along with the recommendation each arm lands on
// (restune-bench -history-size). Like CorpusScale it is not part of
// ExperimentIDs: the exact arm at n=2000 is deliberately cubic.
func HistoryScale(sizes []int, seed int64, iters int) (*ExperimentReport, error) {
	return experiments.HistoryScale(sizes, seed, iters)
}

// ExperimentTitle returns an experiment's description.
func ExperimentTitle(id string) string { return experiments.Title(id) }
