#!/usr/bin/env sh
# bench_snapshot.sh [mathcore|corpus|fleet|drift] — snapshot a benchmark
# family into a JSON file at the repository root: one JSON object mapping
# benchmark name -> { "ns_per_op": ..., "allocs_per_op": ... } plus any
# custom metrics the benchmark reports ("sessions_per_sec", "hit_rate",
# "sla_violations", "drift_events", "max_adapt_iters").
#
# Targets:
#   mathcore (default)  Cholesky, GP-predict, acquisition and meta-weight
#                       kernels plus the batched-inference benchmarks
#                       (PredictBatch, and the point-wise vs batched
#                       OptimizeAcq pair whose ratio is the batching
#                       speedup) -> BENCH_mathcore.json
#   gpscale             BenchmarkGPFitLongHistory: exact vs subset-of-data
#                       sparse model update at n in {1000, 2000}, merged
#                       line-wise into BENCH_mathcore.json (other entries
#                       untouched). The committed snapshot is the
#                       acceptance record for the sparse-GP gate
#                       (sparse/n=2000 <= 20% of exact/n=2000); run
#                       `scripts/benchcheck -gpscale` against it to
#                       re-verify.
#   corpus              BenchmarkMetaIteration: shortlisted corpus path vs
#                       all-learners baseline at N in {34, 100, 1000, 4000}
#                       -> BENCH_corpus.json. The committed snapshot is the
#                       acceptance record for the sublinear-meta gate
#                       (corpus/N=1000 <= 25% of baseline/N=1000); run
#                       scripts/benchcheck against it to re-verify.
#   fleet               BenchmarkFleetSessions: 8 replay-bound sessions over
#                       one shared corpus at 1, 4 and 8 workers
#                       -> BENCH_fleet.json. The committed snapshot is the
#                       acceptance record for the fleet-scaling gate
#                       (>= 3x session throughput at 8 workers vs 1, shared
#                       fit-cache hit rate > 50%); run
#                       `scripts/benchcheck -fleet` against it to re-verify.
#   drift               BenchmarkDriftSimulatedDay: the diurnal and gradual
#                       ramp simulated 24h days with the drift-aware tuner
#                       vs the stationary baseline -> BENCH_drift.json. The
#                       committed snapshot is the acceptance record for the
#                       drift gate (diurnal: aware strictly fewer
#                       post-warmup SLA violations than stationary, at
#                       least one drift event, bounded re-convergence;
#                       ramp: aware no more violations than stationary);
#                       run `scripts/benchcheck -drift` against it to
#                       re-verify.
#
# Environment:
#   BENCHTIME=2s   per-benchmark budget (any go test -benchtime value)
#   COUNT=1        repetitions; with COUNT>1 the last measurement wins

set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-2s}"
COUNT="${COUNT:-1}"
TARGET="${1:-mathcore}"

case "$TARGET" in
mathcore)
    OUT="BENCH_mathcore.json"
    PATTERN='^(BenchmarkCholAppend|BenchmarkCholFullRefactor|BenchmarkGPFitIncremental|BenchmarkGPFitLongHistory|BenchmarkGPPredict|BenchmarkGPPredictNoAlloc|BenchmarkPredictBatch|BenchmarkCEI|BenchmarkOptimizeAcqParallel|BenchmarkOptimizeAcqPointwise|BenchmarkOptimizeAcqBatched|BenchmarkDynamicWeights)$'
    ;;
gpscale)
    OUT="BENCH_mathcore.json"
    MERGE=1
    PATTERN='^BenchmarkGPFitLongHistory$'
    ;;
corpus)
    OUT="BENCH_corpus.json"
    PATTERN='^BenchmarkMetaIteration$'
    ;;
fleet)
    OUT="BENCH_fleet.json"
    PATTERN='^BenchmarkFleetSessions$'
    ;;
drift)
    OUT="BENCH_drift.json"
    PATTERN='^BenchmarkDriftSimulatedDay$'
    ;;
*)
    echo "usage: $0 [mathcore|gpscale|corpus|fleet|drift]" >&2
    exit 2
    ;;
esac

MERGE="${MERGE:-0}"
raw="$(mktemp)"
new="$(mktemp)"
trap 'rm -f "$raw" "$new"' EXIT

echo "==> go test -bench $TARGET (benchtime=$BENCHTIME, count=$COUNT)"
go test -run '^$' -bench "$PATTERN" -benchmem \
    -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$raw"

# Parse `BenchmarkName-N  iters  X ns/op [ Y B/op  Z allocs/op ]` lines into
# a JSON object. Sub-benchmark names (Benchmark/sub/N=k) are kept whole, only
# the trailing -GOMAXPROCS suffix is stripped. Benchmarks without -benchmem
# columns report allocs as null. Custom b.ReportMetric units (sessions/sec,
# hit_rate) are carried through when present.
awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""
    allocs = "null"
    sps = ""
    hr = ""
    viol = ""
    devents = ""
    adapt = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")           ns = $(i - 1)
        if ($i == "allocs/op")       allocs = $(i - 1)
        if ($i == "sessions/sec")    sps = $(i - 1)
        if ($i == "hit_rate")        hr = $(i - 1)
        if ($i == "sla_violations")  viol = $(i - 1)
        if ($i == "drift_events")    devents = $(i - 1)
        if ($i == "max_adapt_iters") adapt = $(i - 1)
    }
    if (ns != "") {
        v = sprintf("{\"ns_per_op\": %s, \"allocs_per_op\": %s", ns, allocs)
        if (sps != "")     v = v sprintf(", \"sessions_per_sec\": %s", sps)
        if (hr != "")      v = v sprintf(", \"hit_rate\": %s", hr)
        if (viol != "")    v = v sprintf(", \"sla_violations\": %s", viol)
        if (devents != "") v = v sprintf(", \"drift_events\": %s", devents)
        if (adapt != "")   v = v sprintf(", \"max_adapt_iters\": %s", adapt)
        vals[name] = v "}"
        if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
    }
}
END {
    printf "{\n"
    for (i = 1; i <= n; i++) {
        printf "  \"%s\": %s%s\n", order[i], vals[order[i]], (i < n ? "," : "")
    }
    printf "}\n"
}
' "$raw" > "$new"

if [ "$MERGE" = 1 ] && [ -f "$OUT" ]; then
    # Line-wise merge into the existing snapshot: entries keep the committed
    # file's order, re-measured names are replaced in place, names only in
    # the new run are appended — so a gpscale refresh never clobbers the
    # other mathcore numbers.
    merged="$(mktemp)"
    awk '
    /^  "/ {
        line = $0
        sub(/,$/, "", line)
        name = line
        sub(/^  "/, "", name)
        sub(/".*/, "", name)
        val = line
        sub(/^[^:]*: /, "", val)
        if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
        vals[name] = val
    }
    END {
        printf "{\n"
        for (i = 1; i <= n; i++) {
            printf "  \"%s\": %s%s\n", order[i], vals[order[i]], (i < n ? "," : "")
        }
        printf "}\n"
    }
    ' "$OUT" "$new" > "$merged"
    mv "$merged" "$OUT"
else
    cp "$new" "$OUT"
fi

echo "==> wrote $OUT"
cat "$OUT"
