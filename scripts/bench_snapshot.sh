#!/usr/bin/env sh
# bench_snapshot.sh — snapshot the math-core microbenchmarks into
# BENCH_mathcore.json at the repository root: one JSON object mapping
# benchmark name -> { "ns_per_op": ..., "allocs_per_op": ... }.
#
# Covers the Cholesky, GP-predict, acquisition and meta-weight kernels plus
# the batched-inference benchmarks (PredictBatch, and the point-wise vs
# batched OptimizeAcq pair whose ratio is the batching speedup).
#
# Environment:
#   BENCHTIME=2s   per-benchmark budget (any go test -benchtime value)
#   COUNT=1        repetitions; with COUNT>1 the last measurement wins

set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-2s}"
COUNT="${COUNT:-1}"
OUT="BENCH_mathcore.json"

PATTERN='^(BenchmarkCholAppend|BenchmarkCholFullRefactor|BenchmarkGPFitIncremental|BenchmarkGPPredict|BenchmarkGPPredictNoAlloc|BenchmarkPredictBatch|BenchmarkCEI|BenchmarkOptimizeAcqParallel|BenchmarkOptimizeAcqPointwise|BenchmarkOptimizeAcqBatched|BenchmarkDynamicWeights)$'

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "==> go test -bench (benchtime=$BENCHTIME, count=$COUNT)"
go test -run '^$' -bench "$PATTERN" -benchmem \
    -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$raw"

# Parse `BenchmarkName-N  iters  X ns/op [ Y B/op  Z allocs/op ]` lines into
# a JSON object. Benchmarks without -benchmem columns report allocs as null.
awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""
    allocs = "null"
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns != "") {
        vals[name] = sprintf("{\"ns_per_op\": %s, \"allocs_per_op\": %s}", ns, allocs)
        if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
    }
}
END {
    printf "{\n"
    for (i = 1; i <= n; i++) {
        printf "  \"%s\": %s%s\n", order[i], vals[order[i]], (i < n ? "," : "")
    }
    printf "}\n"
}
' "$raw" > "$OUT"

echo "==> wrote $OUT"
cat "$OUT"
