// Command benchcheck validates committed benchmark snapshots (written by
// scripts/bench_snapshot.sh) and enforces the acceptance gates they record.
//
// Default mode checks BENCH_corpus.json against the sublinear-meta gate: at
// N=1000 synthetic tasks the shortlisted corpus path must cost at most 25%
// of the all-learners baseline per iteration.
//
//	go run ./scripts/benchcheck BENCH_corpus.json
//
// -fleet checks BENCH_fleet.json against the fleet-scaling gates: 8 workers
// must deliver at least 3x the session throughput of 1 worker over the same
// replay-bound fleet, and the shared-fit cache hit rate must exceed 50%.
//
//	go run ./scripts/benchcheck -fleet BENCH_fleet.json
//
// -drift checks BENCH_drift.json against the drift-adaptation gates over two
// simulated days. Diurnal: the drift-aware tuner must violate the
// load-scaled SLA on strictly fewer post-warmup iterations than the paired
// stationary tuner, must fire at least one drift event, and must re-converge
// to a feasible configuration within a bounded number of iterations after
// every event. Ramp: the graduated response must not lose to the stationary
// baseline (the regression the pre-graduated hard reset exhibited on gradual
// growth).
//
//	go run ./scripts/benchcheck -drift BENCH_drift.json
//
// -gpscale checks BENCH_mathcore.json against the sparse-GP scaling gate:
// at n=2000 observations, one model update on the subset-of-data sparse
// path (BenchmarkGPFitLongHistory/sparse) must cost at most 20% of the
// exact path — the snapshot is refreshed by `scripts/bench_snapshot.sh
// gpscale`, which merges into the committed mathcore file.
//
//	go run ./scripts/benchcheck -gpscale BENCH_mathcore.json
//
// Exit 1 on a malformed snapshot, a missing benchmark entry, or a gate
// violation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// Acceptance gates. maxRatio is the ceiling for corpus/baseline ns at gateN;
// minFleetScaling is the floor for workers=1/workers=8 ns (session throughput
// scaling); minHitRate is the floor for the shared-fit cache hit rate.
const (
	gateN           = 1000
	maxRatio        = 0.25
	minFleetScaling = 3.0
	minHitRate      = 0.5
	// maxAdaptIters bounds re-convergence after a drift event: the worst-case
	// span from an event to the next SLA-feasible iteration on the diurnal day.
	maxAdaptIters = 12
	// gpScaleN and maxSparseRatio define the sparse-GP gate: at gpScaleN
	// observations the sparse model update must cost at most maxSparseRatio
	// of the exact one.
	gpScaleN       = 2000
	maxSparseRatio = 0.20
)

type entry struct {
	NsPerOp        float64  `json:"ns_per_op"`
	AllocsPerOp    *float64 `json:"allocs_per_op"`
	SessionsPerSec *float64 `json:"sessions_per_sec"`
	HitRate        *float64 `json:"hit_rate"`
	SLAViolations  *float64 `json:"sla_violations"`
	DriftEvents    *float64 `json:"drift_events"`
	MaxAdaptIters  *float64 `json:"max_adapt_iters"`
}

func main() {
	fleet := flag.Bool("fleet", false, "validate a BENCH_fleet.json snapshot against the fleet-scaling gates")
	drift := flag.Bool("drift", false, "validate a BENCH_drift.json snapshot against the drift-adaptation gates")
	gpscale := flag.Bool("gpscale", false, "validate a BENCH_mathcore.json snapshot against the sparse-GP scaling gate")
	flag.Parse()
	modes := 0
	for _, on := range []bool{*fleet, *drift, *gpscale} {
		if on {
			modes++
		}
	}
	if flag.NArg() != 1 || modes > 1 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck [-fleet|-drift|-gpscale] <BENCH_*.json>")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *fleet, *drift, *gpscale); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}

func run(path string, fleet, drift, gpscale bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap map[string]entry
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if len(snap) == 0 {
		return fmt.Errorf("%s: snapshot is empty", path)
	}
	for name, e := range snap {
		if e.NsPerOp <= 0 {
			return fmt.Errorf("%s: %s has non-positive ns_per_op %g", path, name, e.NsPerOp)
		}
	}
	if fleet {
		return checkFleet(path, snap)
	}
	if drift {
		return checkDrift(path, snap)
	}
	if gpscale {
		return checkGPScale(path, snap)
	}
	return checkCorpus(path, snap)
}

// checkGPScale enforces the sparse-GP gate on BENCH_mathcore.json: one
// model update (fit plus warm hyperparameter search) at n=2000 on the
// subset-of-data path must cost at most maxSparseRatio of the exact cubic
// path. The n=1000 pair is reported for the scaling table but not gated.
func checkGPScale(path string, snap map[string]entry) error {
	sparse, err := lookup(snap, fmt.Sprintf("BenchmarkGPFitLongHistory/sparse/n=%d", gpScaleN))
	if err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	exact, err := lookup(snap, fmt.Sprintf("BenchmarkGPFitLongHistory/exact/n=%d", gpScaleN))
	if err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	ratio := sparse.NsPerOp / exact.NsPerOp
	fmt.Printf("%s: %d entries OK; n=%d sparse/exact = %.0f/%.0f ns = %.3f (gate %.2f)\n",
		path, len(snap), gpScaleN, sparse.NsPerOp, exact.NsPerOp, ratio, maxSparseRatio)
	if ratio > maxSparseRatio {
		return fmt.Errorf("n=%d sparse model update is %.1f%% of exact, gate is %.0f%%",
			gpScaleN, ratio*100, maxSparseRatio*100)
	}
	return nil
}

func checkCorpus(path string, snap map[string]entry) error {
	corpus, err := lookup(snap, fmt.Sprintf("BenchmarkMetaIteration/corpus/N=%d", gateN))
	if err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	baseline, err := lookup(snap, fmt.Sprintf("BenchmarkMetaIteration/baseline/N=%d", gateN))
	if err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	ratio := corpus.NsPerOp / baseline.NsPerOp
	fmt.Printf("%s: %d entries OK; N=%d corpus/baseline = %.0f/%.0f ns = %.3f (gate %.2f)\n",
		path, len(snap), gateN, corpus.NsPerOp, baseline.NsPerOp, ratio, maxRatio)
	if ratio > maxRatio {
		return fmt.Errorf("N=%d corpus iteration is %.1f%% of baseline, gate is %.0f%%",
			gateN, ratio*100, maxRatio*100)
	}
	return nil
}

// checkFleet enforces the fleet-scaling gates on BENCH_fleet.json: the
// scaling factor is the whole-fleet wall-time ratio workers=1 / workers=8
// (equivalently the session-throughput ratio), and the hit-rate gate reads
// the shared-fit cache rate the 8-worker run reported.
func checkFleet(path string, snap map[string]entry) error {
	serial, err := lookup(snap, "BenchmarkFleetSessions/workers=1")
	if err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	wide, err := lookup(snap, "BenchmarkFleetSessions/workers=8")
	if err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	scaling := serial.NsPerOp / wide.NsPerOp
	fmt.Printf("%s: %d entries OK; workers=1/workers=8 = %.0f/%.0f ns = %.2fx scaling (gate %.1fx)\n",
		path, len(snap), serial.NsPerOp, wide.NsPerOp, scaling, minFleetScaling)
	if scaling < minFleetScaling {
		return fmt.Errorf("8-worker fleet is only %.2fx faster than 1 worker, gate is %.1fx",
			scaling, minFleetScaling)
	}
	if wide.HitRate == nil {
		return fmt.Errorf("%s: workers=8 entry has no hit_rate metric", path)
	}
	fmt.Printf("%s: workers=8 shared-fit hit rate %.3f (gate > %.2f)\n", path, *wide.HitRate, minHitRate)
	if *wide.HitRate <= minHitRate {
		return fmt.Errorf("shared-fit hit rate %.3f is at or below the %.2f gate", *wide.HitRate, minHitRate)
	}
	return nil
}

// checkDrift enforces the drift-adaptation gates on BENCH_drift.json: the
// aware and stationary arms of BenchmarkDriftSimulatedDay share every random
// draw (paired sessions), so their SLA-violation counts are directly
// comparable. On the diurnal day the aware arm must be strictly lower, must
// have detected at least one regime change, and must have re-converged
// within maxAdaptIters iterations of its worst event. On the gradual ramp
// the graduated aware arm must violate no more often than the stationary
// baseline — a ceiling, not strictness, because a perfectly tracking
// stationary tuner is a legitimate tie; the gate exists to keep the
// hard-reset regression (aware strictly worse) from coming back.
func checkDrift(path string, snap map[string]entry) error {
	aware, err := lookup(snap, "BenchmarkDriftSimulatedDay/diurnal/aware")
	if err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	stationary, err := lookup(snap, "BenchmarkDriftSimulatedDay/diurnal/stationary")
	if err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if aware.SLAViolations == nil || aware.DriftEvents == nil || aware.MaxAdaptIters == nil {
		return fmt.Errorf("%s: diurnal aware entry is missing a drift metric (need sla_violations, drift_events, max_adapt_iters)", path)
	}
	if stationary.SLAViolations == nil {
		return fmt.Errorf("%s: diurnal stationary entry has no sla_violations metric", path)
	}
	fmt.Printf("%s: %d entries OK; diurnal violations aware/stationary = %.0f/%.0f (gate: strictly fewer), events %.0f (gate >= 1), max adapt %.0f iters (gate <= %d)\n",
		path, len(snap), *aware.SLAViolations, *stationary.SLAViolations,
		*aware.DriftEvents, *aware.MaxAdaptIters, maxAdaptIters)
	if *aware.SLAViolations >= *stationary.SLAViolations {
		return fmt.Errorf("drift-aware tuner violated the SLA %.0f times vs stationary %.0f on the diurnal day, gate requires strictly fewer",
			*aware.SLAViolations, *stationary.SLAViolations)
	}
	if *aware.DriftEvents < 1 {
		return fmt.Errorf("drift-aware tuner fired %.0f drift events on the diurnal day, gate requires at least 1", *aware.DriftEvents)
	}
	if *aware.MaxAdaptIters > maxAdaptIters {
		return fmt.Errorf("worst-case re-convergence took %.0f iterations, gate is %d", *aware.MaxAdaptIters, maxAdaptIters)
	}

	rampAware, err := lookup(snap, "BenchmarkDriftSimulatedDay/ramp/aware")
	if err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	rampStationary, err := lookup(snap, "BenchmarkDriftSimulatedDay/ramp/stationary")
	if err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if rampAware.SLAViolations == nil || rampStationary.SLAViolations == nil {
		return fmt.Errorf("%s: a ramp entry has no sla_violations metric", path)
	}
	fmt.Printf("%s: ramp violations aware/stationary = %.0f/%.0f (gate: no more)\n",
		path, *rampAware.SLAViolations, *rampStationary.SLAViolations)
	if *rampAware.SLAViolations > *rampStationary.SLAViolations {
		return fmt.Errorf("graduated drift-aware tuner violated the SLA %.0f times vs stationary %.0f on the ramp, gate requires no more",
			*rampAware.SLAViolations, *rampStationary.SLAViolations)
	}
	return nil
}

func lookup(snap map[string]entry, name string) (entry, error) {
	e, ok := snap[name]
	if !ok {
		return entry{}, fmt.Errorf("missing benchmark entry %q", name)
	}
	return e, nil
}
