// Command benchcheck validates a committed benchmark snapshot
// (BENCH_corpus.json, written by scripts/bench_snapshot.sh corpus) and
// enforces the sublinear-meta acceptance gate: at N=1000 synthetic tasks the
// shortlisted corpus path must cost at most 25% of the all-learners baseline
// per iteration.
//
//	go run ./scripts/benchcheck BENCH_corpus.json
//
// Exit 1 on a malformed snapshot, a missing benchmark entry, or a gate
// violation.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// maxRatio is the acceptance ceiling for corpus/baseline at gateN.
const (
	gateN    = 1000
	maxRatio = 0.25
)

type entry struct {
	NsPerOp     float64  `json:"ns_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck <BENCH_corpus.json>")
		os.Exit(2)
	}
	if err := run(os.Args[1]); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}

func run(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap map[string]entry
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if len(snap) == 0 {
		return fmt.Errorf("%s: snapshot is empty", path)
	}
	for name, e := range snap {
		if e.NsPerOp <= 0 {
			return fmt.Errorf("%s: %s has non-positive ns_per_op %g", path, name, e.NsPerOp)
		}
	}

	corpus, err := lookup(snap, fmt.Sprintf("BenchmarkMetaIteration/corpus/N=%d", gateN))
	if err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	baseline, err := lookup(snap, fmt.Sprintf("BenchmarkMetaIteration/baseline/N=%d", gateN))
	if err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	ratio := corpus / baseline
	fmt.Printf("%s: %d entries OK; N=%d corpus/baseline = %.0f/%.0f ns = %.3f (gate %.2f)\n",
		path, len(snap), gateN, corpus, baseline, ratio, maxRatio)
	if ratio > maxRatio {
		return fmt.Errorf("N=%d corpus iteration is %.1f%% of baseline, gate is %.0f%%",
			gateN, ratio*100, maxRatio*100)
	}
	return nil
}

func lookup(snap map[string]entry, name string) (float64, error) {
	e, ok := snap[name]
	if !ok {
		return 0, fmt.Errorf("missing benchmark entry %q", name)
	}
	return e.NsPerOp, nil
}
