#!/usr/bin/env sh
# verify.sh — the repository's full verification gate.
#
# Runs, in order:
#   1. go build ./...
#   2. go vet ./...
#   3. go test ./...                 (includes the exhaustive crash-point
#                                     harness, golden-trace and error-path
#                                     regression suites)
#   4. go test -race ./...           (short mode: the crash harness strides
#                                     its boundary enumeration under -short)
#   5. a fuzz smoke pass: every Fuzz target runs for FUZZTIME (default 30s)
#
# Environment:
#   FUZZTIME=30s   per-target fuzz budget; set FUZZTIME=0 to skip fuzzing
#
# Any failure aborts with a nonzero exit.

set -eu

cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-30s}"

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race -short ./..."
go test -race -short ./...

if [ "$FUZZTIME" = "0" ]; then
    echo "==> fuzz smoke skipped (FUZZTIME=0)"
    exit 0
fi

# Fuzz targets must run one at a time (go test allows a single -fuzz
# pattern per package invocation).
fuzz() {
    pkg="$1"
    target="$2"
    echo "==> fuzz $target ($pkg, $FUZZTIME)"
    go test "$pkg" -run '^$' -fuzz "^$target\$" -fuzztime "$FUZZTIME"
}

fuzz ./internal/minidb FuzzExecutorStatements
fuzz ./internal/minidb FuzzBTreeOperations
fuzz ./internal/minidb FuzzWALReplay
fuzz ./internal/replay FuzzExtractTemplate

echo "==> verify OK"
