#!/usr/bin/env sh
# verify.sh — the repository's full verification gate.
#
# Runs, in order:
#   1. gofmt -l (repository must be gofmt-clean)
#   2. go build ./...
#   3. go vet ./...
#   4. go test ./...                 (includes the exhaustive crash-point
#                                     harness, golden-trace and error-path
#                                     regression suites)
#   5. go test -race ./...           (short mode: the crash harness strides
#                                     its boundary enumeration under -short)
#   6. a benchmark smoke pass: the batched math-core benchmarks, the
#      corpus-scale meta-iteration benchmark, the fleet-scaling benchmark,
#      the simulated-day drift benchmark and the long-history sparse-GP
#      benchmark run once (-benchtime=1x) so a broken benchmark cannot land
#      silently
#   7. snapshot guards: the committed BENCH_corpus.json must satisfy the
#      <= 25% sublinear-meta gate, the committed BENCH_fleet.json must
#      satisfy the >= 3x fleet-scaling / > 50% hit-rate gates, the
#      committed BENCH_drift.json must satisfy the drift-adaptation gates
#      (diurnal: aware strictly fewer SLA violations than stationary, >= 1
#      drift event, bounded re-convergence; ramp: aware no more violations
#      than stationary), and the committed BENCH_mathcore.json must satisfy
#      the sparse-GP gate (sparse model update at n=2000 <= 20% of exact)
#      (scripts/benchcheck)
#   8. telemetry smoke runs: restune-tune -trace must emit a non-empty,
#      schema-valid JSONL artifact, a 2-session restune-server fleet must
#      emit schema-valid per-session and fleet streams, and a drift-aware
#      restune-bench -timeline day must emit a trace whose core.iteration
#      spans carry drift/trust-region attrs
#   9. a fuzz smoke pass: every Fuzz target runs for FUZZTIME (default 30s)
#
# Environment:
#   FUZZTIME=30s   per-target fuzz budget; set FUZZTIME=0 to skip fuzzing
#
# Any failure aborts with a nonzero exit.

set -eu

cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-30s}"

echo "==> gofmt -l"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files are not formatted:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race -short ./..."
go test -race -short ./...

echo "==> benchmark smoke (-benchtime=1x)"
go test -run '^$' \
    -bench 'PredictBatch$|OptimizeAcqPointwise$|OptimizeAcqBatched$|^BenchmarkMetaIteration$|^BenchmarkFleetSessions$|^BenchmarkDriftSimulatedDay$|^BenchmarkGPFitLongHistory$' \
    -benchtime 1x .

echo "==> corpus snapshot guard (scripts/benchcheck)"
go run ./scripts/benchcheck BENCH_corpus.json

echo "==> fleet snapshot guard (scripts/benchcheck -fleet)"
go run ./scripts/benchcheck -fleet BENCH_fleet.json

echo "==> drift snapshot guard (scripts/benchcheck -drift)"
go run ./scripts/benchcheck -drift BENCH_drift.json

echo "==> sparse-GP snapshot guard (scripts/benchcheck -gpscale)"
go run ./scripts/benchcheck -gpscale BENCH_mathcore.json

echo "==> telemetry smoke (restune-tune -trace)"
tracedir="$(mktemp -d)"
trap 'rm -rf "$tracedir"' EXIT
go run ./cmd/restune-tune -workload twitter -iters 6 -trace "$tracedir/trace.jsonl" >/dev/null
test -s "$tracedir/trace.jsonl" || {
    echo "telemetry smoke: trace is empty" >&2
    exit 1
}
go run ./scripts/tracecheck "$tracedir/trace.jsonl"

echo "==> fleet smoke (restune-server, 2 sessions)"
go run ./cmd/restune-server -sessions 2 -workers 2 -iters 3 \
    -synthetic-corpus 6 -trace-dir "$tracedir/fleet" >/dev/null
for f in "$tracedir"/fleet/*.jsonl; do
    test -s "$f" || {
        echo "fleet smoke: $f is empty" >&2
        exit 1
    }
done
go run ./scripts/tracecheck "$tracedir"/fleet/*.jsonl

echo "==> timeline smoke (restune-bench -timeline, drift-aware day)"
go run ./cmd/restune-bench -timeline spike -iters 16 \
    -trace "$tracedir/timeline.jsonl" >/dev/null
test -s "$tracedir/timeline.jsonl" || {
    echo "timeline smoke: trace is empty" >&2
    exit 1
}
go run ./scripts/tracecheck "$tracedir/timeline.jsonl"
grep -q 'drift_event' "$tracedir/timeline.jsonl" || {
    echo "timeline smoke: trace has no drift/trust-region attrs" >&2
    exit 1
}

if [ "$FUZZTIME" = "0" ]; then
    echo "==> fuzz smoke skipped (FUZZTIME=0)"
    exit 0
fi

# Fuzz targets must run one at a time (go test allows a single -fuzz
# pattern per package invocation).
fuzz() {
    pkg="$1"
    target="$2"
    echo "==> fuzz $target ($pkg, $FUZZTIME)"
    go test "$pkg" -run '^$' -fuzz "^$target\$" -fuzztime "$FUZZTIME"
}

fuzz ./internal/minidb FuzzExecutorStatements
fuzz ./internal/minidb FuzzBTreeOperations
fuzz ./internal/minidb FuzzWALReplay
fuzz ./internal/replay FuzzExtractTemplate
fuzz ./internal/gp FuzzPredictBatch
fuzz ./internal/gp FuzzSparseSelect
fuzz ./internal/meta FuzzCorpusIndex
fuzz ./internal/workload FuzzTimeline

echo "==> verify OK"
