#!/usr/bin/env sh
# verify.sh — the repository's full verification gate.
#
# Runs, in order:
#   1. gofmt -l (repository must be gofmt-clean)
#   2. go build ./...
#   3. go vet ./...
#   4. go test ./...                 (includes the exhaustive crash-point
#                                     harness, golden-trace and error-path
#                                     regression suites)
#   5. go test -race ./...           (short mode: the crash harness strides
#                                     its boundary enumeration under -short)
#   6. a benchmark smoke pass: the batched math-core benchmarks and the
#      corpus-scale meta-iteration benchmark run once (-benchtime=1x) so a
#      broken benchmark cannot land silently
#   7. a snapshot guard: the committed BENCH_corpus.json must parse and its
#      N=1000 corpus/baseline ratio must satisfy the <= 25% gate
#      (scripts/benchcheck)
#   8. a telemetry smoke run: restune-tune -trace must emit a non-empty,
#      schema-valid JSONL artifact
#   9. a fuzz smoke pass: every Fuzz target runs for FUZZTIME (default 30s)
#
# Environment:
#   FUZZTIME=30s   per-target fuzz budget; set FUZZTIME=0 to skip fuzzing
#
# Any failure aborts with a nonzero exit.

set -eu

cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-30s}"

echo "==> gofmt -l"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files are not formatted:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race -short ./..."
go test -race -short ./...

echo "==> benchmark smoke (-benchtime=1x)"
go test -run '^$' \
    -bench 'PredictBatch$|OptimizeAcqPointwise$|OptimizeAcqBatched$|^BenchmarkMetaIteration$' \
    -benchtime 1x .

echo "==> corpus snapshot guard (scripts/benchcheck)"
go run ./scripts/benchcheck BENCH_corpus.json

echo "==> telemetry smoke (restune-tune -trace)"
tracedir="$(mktemp -d)"
trap 'rm -rf "$tracedir"' EXIT
go run ./cmd/restune-tune -workload twitter -iters 6 -trace "$tracedir/trace.jsonl" >/dev/null
test -s "$tracedir/trace.jsonl" || {
    echo "telemetry smoke: trace is empty" >&2
    exit 1
}
go run ./scripts/tracecheck "$tracedir/trace.jsonl"

if [ "$FUZZTIME" = "0" ]; then
    echo "==> fuzz smoke skipped (FUZZTIME=0)"
    exit 0
fi

# Fuzz targets must run one at a time (go test allows a single -fuzz
# pattern per package invocation).
fuzz() {
    pkg="$1"
    target="$2"
    echo "==> fuzz $target ($pkg, $FUZZTIME)"
    go test "$pkg" -run '^$' -fuzz "^$target\$" -fuzztime "$FUZZTIME"
}

fuzz ./internal/minidb FuzzExecutorStatements
fuzz ./internal/minidb FuzzBTreeOperations
fuzz ./internal/minidb FuzzWALReplay
fuzz ./internal/replay FuzzExtractTemplate
fuzz ./internal/gp FuzzPredictBatch
fuzz ./internal/meta FuzzCorpusIndex

echo "==> verify OK"
