// Command tracecheck validates JSONL telemetry traces (the artifacts
// restune-tune/restune-bench write with -trace and restune-server writes
// into -trace-dir) against the DESIGN.md §8 schema, and with -summary
// prints a human-readable digest. It is the engine behind
// scripts/trace_summary.sh and the verify.sh smoke gate.
//
// With several traces — a fleet run's per-session streams plus fleet.jsonl —
// every file is validated and a fleet aggregation is printed: per-session
// iteration counts and the fleet-wide shared-fit cache totals.
//
// Drift-aware sessions are aggregated from their core.iteration span attrs:
// the digest and the fleet aggregation report how many iterations fired a
// drift event and the range the trust-region radius covered.
//
//	go run ./scripts/tracecheck trace.jsonl              # validate, exit 1 on violation
//	go run ./scripts/tracecheck -summary trace.jsonl     # validate + summarize
//	go run ./scripts/tracecheck traces/*.jsonl           # validate all + fleet aggregation
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// event mirrors obs.Event (kept separate so the schema check is an
// independent reading of the contract, not the producer's own struct).
type event struct {
	Type    string         `json:"t"`
	TS      string         `json:"ts"`
	Name    string         `json:"name"`
	DurUS   int64          `json:"dur_us"`
	Value   float64        `json:"v"`
	Count   uint64         `json:"count"`
	Sum     float64        `json:"sum"`
	Buckets []float64      `json:"buckets"`
	Counts  []uint64       `json:"counts"`
	Attrs   map[string]any `json:"attrs"`
}

type spanStat struct {
	n     int
	total int64 // microseconds
	max   int64
}

type histStat struct {
	count uint64
	sum   float64
}

// traceStats is one validated trace's digest.
type traceStats struct {
	path     string
	events   int
	spans    map[string]*spanStat
	counters map[string]float64
	gauges   map[string]float64
	hists    map[string]histStat

	// Drift/trust-region aggregation over core.iteration span attrs: how
	// many iterations fired a drift event, and the range the trust-region
	// radius covered (trustN counts iterations that carried a radius).
	driftEvents int
	trustN      int
	trustMin    float64
	trustMax    float64
}

func main() {
	summary := flag.Bool("summary", false, "print a digest of each trace after validating")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-summary] <trace.jsonl> [more.jsonl ...]")
		os.Exit(2)
	}
	if err := run(flag.Args(), *summary); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}

func run(paths []string, summary bool) error {
	stats := make([]*traceStats, 0, len(paths))
	for _, p := range paths {
		st, err := parse(p)
		if err != nil {
			return err
		}
		stats = append(stats, st)
	}
	for _, st := range stats {
		if summary {
			st.printDigest()
		} else {
			fmt.Printf("%s: %d events OK\n", st.path, st.events)
		}
	}
	if len(stats) > 1 {
		printFleetAggregation(stats)
	}
	return nil
}

func parse(path string) (*traceStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	st := &traceStats{
		path:     path,
		spans:    map[string]*spanStat{},
		counters: map[string]float64{},
		gauges:   map[string]float64{},
		hists:    map[string]histStat{},
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			return nil, fmt.Errorf("%s:%d: empty line", path, line)
		}
		var e event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		if e.Name == "" {
			return nil, fmt.Errorf("%s:%d: event has no name", path, line)
		}
		if _, err := time.Parse(time.RFC3339Nano, e.TS); err != nil {
			return nil, fmt.Errorf("%s:%d: bad timestamp %q", path, line, e.TS)
		}
		switch e.Type {
		case "span":
			if e.DurUS < 0 {
				return nil, fmt.Errorf("%s:%d: span %s has negative duration", path, line, e.Name)
			}
			s := st.spans[e.Name]
			if s == nil {
				s = &spanStat{}
				st.spans[e.Name] = s
			}
			s.n++
			s.total += e.DurUS
			if e.DurUS > s.max {
				s.max = e.DurUS
			}
			if e.Name == "core.iteration" {
				if fired, ok := e.Attrs["drift_event"].(bool); ok && fired {
					st.driftEvents++
				}
				if r, ok := e.Attrs["trust_radius"].(float64); ok {
					if st.trustN == 0 || r < st.trustMin {
						st.trustMin = r
					}
					if st.trustN == 0 || r > st.trustMax {
						st.trustMax = r
					}
					st.trustN++
				}
			}
		case "counter":
			st.counters[e.Name] = e.Value
		case "gauge":
			st.gauges[e.Name] = e.Value
		case "hist":
			if len(e.Counts) != len(e.Buckets)+1 {
				return nil, fmt.Errorf("%s:%d: hist %s has %d counts for %d buckets (want buckets+1)",
					path, line, e.Name, len(e.Counts), len(e.Buckets))
			}
			var n uint64
			for _, c := range e.Counts {
				n += c
			}
			if n != e.Count {
				return nil, fmt.Errorf("%s:%d: hist %s bucket counts sum to %d, count says %d",
					path, line, e.Name, n, e.Count)
			}
			for i := 1; i < len(e.Buckets); i++ {
				if e.Buckets[i] <= e.Buckets[i-1] {
					return nil, fmt.Errorf("%s:%d: hist %s buckets not ascending", path, line, e.Name)
				}
			}
			st.hists[e.Name] = histStat{count: e.Count, sum: e.Sum}
		default:
			return nil, fmt.Errorf("%s:%d: unknown event type %q", path, line, e.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if line == 0 {
		return nil, fmt.Errorf("%s: trace is empty", path)
	}
	st.events = line
	return st, nil
}

func (st *traceStats) printDigest() {
	fmt.Printf("%s: %d events\n\n", st.path, st.events)
	if len(st.spans) > 0 {
		fmt.Printf("%-28s %8s %12s %12s %12s\n", "span", "n", "total_ms", "avg_ms", "max_ms")
		for _, name := range sorted(st.spans) {
			s := st.spans[name]
			fmt.Printf("%-28s %8d %12.3f %12.3f %12.3f\n", name, s.n,
				float64(s.total)/1e3, float64(s.total)/float64(s.n)/1e3, float64(s.max)/1e3)
		}
		fmt.Println()
	}
	if st.trustN > 0 || st.driftEvents > 0 {
		fmt.Printf("drift: %d events; trust radius [%.3f, %.3f] over %d iterations\n\n",
			st.driftEvents, st.trustMin, st.trustMax, st.trustN)
	}
	if len(st.counters) > 0 {
		fmt.Printf("%-40s %14s\n", "counter", "value")
		for _, name := range sorted(st.counters) {
			fmt.Printf("%-40s %14.0f\n", name, st.counters[name])
		}
		fmt.Println()
	}
	if len(st.gauges) > 0 {
		fmt.Printf("%-40s %14s\n", "gauge", "value")
		for _, name := range sorted(st.gauges) {
			fmt.Printf("%-40s %14.4g\n", name, st.gauges[name])
		}
		fmt.Println()
	}
	if len(st.hists) > 0 {
		fmt.Printf("%-32s %10s %14s %12s\n", "histogram", "count", "sum", "mean")
		for _, name := range sorted(st.hists) {
			h := st.hists[name]
			mean := 0.0
			if h.count > 0 {
				mean = h.sum / float64(h.count)
			}
			fmt.Printf("%-32s %10d %14.1f %12.2f\n", name, h.count, h.sum, mean)
		}
		fmt.Println()
	}
}

// printFleetAggregation summarizes a multi-session fleet run: per-session
// iteration counts from each stream's core.iteration spans, and the
// fleet-wide shared-fit cache totals from whichever stream carries the
// meta.shared_fit_* counters (restune-server's fleet.jsonl).
func printFleetAggregation(stats []*traceStats) {
	fmt.Printf("\nfleet aggregation over %d traces:\n", len(stats))
	fmt.Printf("  %-36s %10s %10s %12s\n", "trace", "iters", "events", "corpus_fits")
	totalIters, totalEvents := 0, 0
	var hits, misses, localFits float64
	for _, st := range stats {
		iters := 0
		if s := st.spans["core.iteration"]; s != nil {
			iters = s.n
		}
		fits := st.counters["meta.corpus_fits"]
		localFits += fits
		hits += st.counters["meta.shared_fit_hits"]
		misses += st.counters["meta.shared_fit_misses"]
		totalIters += iters
		totalEvents += st.events
		fmt.Printf("  %-36s %10d %10d %12.0f\n", filepath.Base(st.path), iters, st.events, fits)
	}
	fmt.Printf("  fleet totals: %d iterations, %d events, %.0f session-local materializations\n",
		totalIters, totalEvents, localFits)
	if hits+misses > 0 {
		fmt.Printf("  shared-fit cache: %.0f hits / %.0f misses (%.1f%% hit rate)\n",
			hits, misses, 100*hits/(hits+misses))
	}
	driftEvents, trustN := 0, 0
	trustMin, trustMax := 0.0, 0.0
	for _, st := range stats {
		driftEvents += st.driftEvents
		if st.trustN == 0 {
			continue
		}
		if trustN == 0 || st.trustMin < trustMin {
			trustMin = st.trustMin
		}
		if trustN == 0 || st.trustMax > trustMax {
			trustMax = st.trustMax
		}
		trustN += st.trustN
	}
	if driftEvents > 0 || trustN > 0 {
		fmt.Printf("  drift: %d events; trust radius [%.3f, %.3f] over %d iterations\n",
			driftEvents, trustMin, trustMax, trustN)
	}
}

func sorted[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
