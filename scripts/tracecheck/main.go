// Command tracecheck validates a JSONL telemetry trace (the artifact
// restune-tune/restune-bench write with -trace) against the DESIGN.md §8
// schema, and with -summary prints a human-readable digest. It is the
// engine behind scripts/trace_summary.sh and the verify.sh smoke gate.
//
//	go run ./scripts/tracecheck trace.jsonl            # validate, exit 1 on violation
//	go run ./scripts/tracecheck -summary trace.jsonl   # validate + summarize
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"
)

// event mirrors obs.Event (kept separate so the schema check is an
// independent reading of the contract, not the producer's own struct).
type event struct {
	Type    string         `json:"t"`
	TS      string         `json:"ts"`
	Name    string         `json:"name"`
	DurUS   int64          `json:"dur_us"`
	Value   float64        `json:"v"`
	Count   uint64         `json:"count"`
	Sum     float64        `json:"sum"`
	Buckets []float64      `json:"buckets"`
	Counts  []uint64       `json:"counts"`
	Attrs   map[string]any `json:"attrs"`
}

func main() {
	summary := flag.Bool("summary", false, "print a digest of the trace after validating")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-summary] <trace.jsonl>")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *summary); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}

func run(path string, summary bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	type spanStat struct {
		n     int
		total int64 // microseconds
		max   int64
	}
	spans := map[string]*spanStat{}
	counters := map[string]float64{}
	gauges := map[string]float64{}
	type histStat struct {
		count uint64
		sum   float64
	}
	hists := map[string]histStat{}

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			return fmt.Errorf("%s:%d: empty line", path, line)
		}
		var e event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return fmt.Errorf("%s:%d: %v", path, line, err)
		}
		if e.Name == "" {
			return fmt.Errorf("%s:%d: event has no name", path, line)
		}
		if _, err := time.Parse(time.RFC3339Nano, e.TS); err != nil {
			return fmt.Errorf("%s:%d: bad timestamp %q", path, line, e.TS)
		}
		switch e.Type {
		case "span":
			if e.DurUS < 0 {
				return fmt.Errorf("%s:%d: span %s has negative duration", path, line, e.Name)
			}
			s := spans[e.Name]
			if s == nil {
				s = &spanStat{}
				spans[e.Name] = s
			}
			s.n++
			s.total += e.DurUS
			if e.DurUS > s.max {
				s.max = e.DurUS
			}
		case "counter":
			counters[e.Name] = e.Value
		case "gauge":
			gauges[e.Name] = e.Value
		case "hist":
			if len(e.Counts) != len(e.Buckets)+1 {
				return fmt.Errorf("%s:%d: hist %s has %d counts for %d buckets (want buckets+1)",
					path, line, e.Name, len(e.Counts), len(e.Buckets))
			}
			var n uint64
			for _, c := range e.Counts {
				n += c
			}
			if n != e.Count {
				return fmt.Errorf("%s:%d: hist %s bucket counts sum to %d, count says %d",
					path, line, e.Name, n, e.Count)
			}
			for i := 1; i < len(e.Buckets); i++ {
				if e.Buckets[i] <= e.Buckets[i-1] {
					return fmt.Errorf("%s:%d: hist %s buckets not ascending", path, line, e.Name)
				}
			}
			hists[e.Name] = histStat{count: e.Count, sum: e.Sum}
		default:
			return fmt.Errorf("%s:%d: unknown event type %q", path, line, e.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if line == 0 {
		return fmt.Errorf("%s: trace is empty", path)
	}

	if !summary {
		fmt.Printf("%s: %d events OK\n", path, line)
		return nil
	}

	fmt.Printf("%s: %d events\n\n", path, line)
	if len(spans) > 0 {
		fmt.Printf("%-28s %8s %12s %12s %12s\n", "span", "n", "total_ms", "avg_ms", "max_ms")
		for _, name := range sorted(spans) {
			s := spans[name]
			fmt.Printf("%-28s %8d %12.3f %12.3f %12.3f\n", name, s.n,
				float64(s.total)/1e3, float64(s.total)/float64(s.n)/1e3, float64(s.max)/1e3)
		}
		fmt.Println()
	}
	if len(counters) > 0 {
		fmt.Printf("%-40s %14s\n", "counter", "value")
		for _, name := range sorted(counters) {
			fmt.Printf("%-40s %14.0f\n", name, counters[name])
		}
		fmt.Println()
	}
	if len(gauges) > 0 {
		fmt.Printf("%-40s %14s\n", "gauge", "value")
		for _, name := range sorted(gauges) {
			fmt.Printf("%-40s %14.4g\n", name, gauges[name])
		}
		fmt.Println()
	}
	if len(hists) > 0 {
		fmt.Printf("%-32s %10s %14s %12s\n", "histogram", "count", "sum", "mean")
		for _, name := range sorted(hists) {
			h := hists[name]
			mean := 0.0
			if h.count > 0 {
				mean = h.sum / float64(h.count)
			}
			fmt.Printf("%-32s %10d %14.1f %12.2f\n", name, h.count, h.sum, mean)
		}
	}
	return nil
}

func sorted[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
