#!/usr/bin/env sh
# trace_summary.sh — validate and summarize a JSONL telemetry trace written
# by `restune-tune -trace` or `restune-bench -trace` (schema: DESIGN.md §8).
#
# Usage: scripts/trace_summary.sh trace.jsonl

set -eu

if [ "$#" -ne 1 ]; then
    echo "usage: $0 <trace.jsonl>" >&2
    exit 2
fi

cd "$(dirname "$0")/.."
exec go run ./scripts/tracecheck -summary "$1"
