#!/usr/bin/env sh
# trace_summary.sh — validate and summarize JSONL telemetry traces written
# by `restune-tune -trace`, `restune-bench -trace`, or `restune-server
# -trace-dir` (schema: DESIGN.md §8). With several traces (a fleet run's
# per-session streams plus fleet.jsonl) a fleet aggregation is appended:
# per-session iteration counts and the shared-fit cache totals.
#
# Usage: scripts/trace_summary.sh trace.jsonl [more.jsonl ...]
#        scripts/trace_summary.sh traces/*.jsonl

set -eu

if [ "$#" -lt 1 ]; then
    echo "usage: $0 <trace.jsonl> [more.jsonl ...]" >&2
    exit 2
fi

cd "$(dirname "$0")/.."
exec go run ./scripts/tracecheck -summary "$@"
