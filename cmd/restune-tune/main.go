// Command restune-tune runs one resource-oriented tuning session: it picks
// a workload and instance type, measures the DBA default to fix the SLA,
// and tunes the selected knob space with ResTune (optionally meta-boosted
// by a repository built with restune-repo) or any baseline method.
//
// Examples:
//
//	restune-tune -workload twitter -instance A -resource cpu -iters 50
//	restune-tune -workload tpcc -resource iops -knobs io -method ituned
//	restune-tune -workload sysbench -repo repo.json -method restune
//	restune-tune -workload twitter -repo repo.json -shortlist 16
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"repro/restune"
)

func main() {
	var (
		workloadName = flag.String("workload", "sysbench", "workload: sysbench, tpcc, twitter, hotel, sales, twitter-w1..w5")
		instance     = flag.String("instance", "A", "instance type A-F (paper Table 1)")
		resource     = flag.String("resource", "cpu", "resource to minimize: cpu, io_bps, iops, memory")
		knobSet      = flag.String("knobs", "", "knob space: cpu (14), memory (6), io (20), case-study (3); default follows -resource")
		method       = flag.String("method", "restune", "method: restune, ituned, ottertune, cdbtune, grid, default")
		iters        = flag.Int("iters", 50, "tuning iterations")
		seed         = flag.Int64("seed", 1, "random seed")
		repoPath     = flag.String("repo", "", "repository JSON for meta-learning (restune only)")
		shortlist    = flag.Int("shortlist", 0, "with -repo: open the repository lazily and shortlist the top-K base tasks per iteration (0 = eager all-learners path)")
		converge     = flag.Bool("converge", false, "stop early under the paper's 0.5%/10-iteration convergence rule")
		verbose      = flag.Bool("v", false, "print every iteration")
		engine       = flag.Bool("engine", false, "measure against the real minidb storage engine instead of the simulator (slower, real I/O; engine-relevant knobs only)")
		tracePath    = flag.String("trace", "", "write a JSONL telemetry trace of the session to this file")
		debugAddr    = flag.String("debug-addr", "", "serve expvar/metrics/pprof on this address (e.g. localhost:6060) for the duration of the run")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "restune-tune: unexpected arguments: %s\n", strings.Join(flag.Args(), " "))
		os.Exit(2)
	}
	if *iters <= 0 {
		fmt.Fprintf(os.Stderr, "restune-tune: -iters must be positive (got %d)\n", *iters)
		os.Exit(2)
	}
	if *shortlist < 0 {
		fmt.Fprintf(os.Stderr, "restune-tune: -shortlist must not be negative (got %d)\n", *shortlist)
		os.Exit(2)
	}
	if err := run(*workloadName, *instance, *resource, *knobSet, *method, *iters, *shortlist, *seed, *repoPath, *tracePath, *debugAddr, *converge, *verbose, *engine); err != nil {
		fmt.Fprintln(os.Stderr, "restune-tune:", err)
		os.Exit(1)
	}
}

func run(workloadName, instance, resource, knobSet, method string, iters, shortlist int, seed int64, repoPath, tracePath, debugAddr string, converge, verbose, engine bool) (retErr error) {
	w, err := pickWorkload(workloadName)
	if err != nil {
		return err
	}
	res, err := pickResource(resource)
	if err != nil {
		return err
	}
	space, err := pickSpace(knobSet, res)
	if err != nil {
		return err
	}

	// Telemetry: a live JSONL recorder when -trace or -debug-addr asks for
	// one, the no-op recorder otherwise. Decisions never depend on it.
	rec := restune.NopRecorder()
	var trace *restune.TraceRecorder
	if tracePath != "" {
		trace, err = restune.NewTraceFile(tracePath)
		if err != nil {
			return err
		}
		rec = trace
	} else if debugAddr != "" {
		trace = restune.NewTraceRecorder(io.Discard)
		rec = trace
	}
	if trace != nil {
		// A trace that silently lost events is worse than no trace: surface
		// any sink error as the command's own failure.
		defer func() {
			if err := trace.Close(); err != nil && retErr == nil {
				retErr = fmt.Errorf("writing trace %s: %w", tracePath, err)
			}
		}()
	}
	if debugAddr != "" {
		bound, shutdown, err := restune.ServeDebug(debugAddr, trace)
		if err != nil {
			return fmt.Errorf("starting debug server: %w", err)
		}
		defer shutdown()
		fmt.Printf("debug endpoint: http://%s/debug/vars (metrics at /debug/metrics, pprof at /debug/pprof/)\n", bound)
	}

	var ev restune.Evaluator
	if engine {
		// Real engine: scale the workload to desk size and restrict to the
		// knobs minidb implements.
		space = restune.RealEngineKnobs()
		dir, err := os.MkdirTemp("", "restune-engine")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		eng := restune.NewEngineEvaluator(dir, space, res, w.WithRequestRate(1200), seed)
		eng.Rows = 1500
		eng.Recorder = rec
		ev = eng
		fmt.Println("engine mode: measurements come from real replays against minidb")
	} else {
		var opts []restune.SimulatorOption
		if res == restune.CPU || res == restune.IOBandwidth || res == restune.IOOperations {
			opts = append(opts, restune.WithHalfRAMBufferPool())
		}
		sim := restune.NewSimulator(restune.Instance(instance), w.Profile, seed, opts...)
		ev = restune.NewEvaluator(sim, space, res)
	}

	tuner, cleanup, err := pickTuner(method, seed, shortlist, repoPath, space, w, converge, engine, rec)
	if err != nil {
		return err
	}
	if cleanup != nil {
		defer cleanup()
	}

	fmt.Printf("tuning %s on instance %s: minimize %s over %d knobs with %s (%d iterations)\n",
		w.Name, instance, res, space.Dim(), tuner.Name(), iters)
	result, err := tuner.Run(ev, iters)
	if err != nil {
		return err
	}

	def := result.Iterations[0]
	fmt.Printf("\nSLA from default config: throughput >= %.0f txn/s, p99 latency <= %.1f ms\n",
		result.SLA.LambdaTps, result.SLA.LambdaLat)
	fmt.Printf("default %s: %s\n", res, fmtRes(res, def.Observation.Res))

	if verbose {
		for _, it := range result.Iterations[1:] {
			feas := " "
			if it.Feasible {
				feas = "*"
			}
			fmt.Printf("  iter %3d [%-7s]%s res=%-12s tps=%-8.0f lat=%.1fms\n",
				it.Index, it.Phase, feas, fmtRes(res, it.Observation.Res),
				it.Observation.Tps, it.Observation.Lat)
		}
	}

	best, ok := result.BestFeasible()
	if !ok {
		fmt.Println("\nno feasible configuration found beyond the default")
		return nil
	}
	fmt.Printf("\nbest feasible %s: %s (%.1f%% below default, found at iteration %d%s)\n",
		res, fmtRes(res, best.Res), result.ImprovementPct(), result.IterationsToBest(),
		map[bool]string{true: ", converged", false: ""}[result.Converged])
	fmt.Printf("configuration: %s\n", space.Describe(space.Denormalize(best.Theta)))
	fmt.Printf("at that point: throughput %.0f txn/s, p99 latency %.1f ms (SLA held)\n", best.Tps, best.Lat)
	return nil
}

func pickWorkload(name string) (restune.Workload, error) {
	switch strings.ToLower(name) {
	case "sysbench":
		return restune.Sysbench(10), nil
	case "sysbench-100g":
		return restune.Sysbench(100), nil
	case "tpcc":
		return restune.TPCC(200), nil
	case "twitter":
		return restune.Twitter(), nil
	case "hotel":
		return restune.Hotel(), nil
	case "sales":
		return restune.Sales(), nil
	}
	for i := 1; i <= 5; i++ {
		if strings.EqualFold(name, fmt.Sprintf("twitter-w%d", i)) {
			return restune.TwitterVariant(i), nil
		}
	}
	return restune.Workload{}, fmt.Errorf("unknown workload %q", name)
}

func pickResource(name string) (restune.Resource, error) {
	switch strings.ToLower(name) {
	case "cpu":
		return restune.CPU, nil
	case "io_bps", "bps":
		return restune.IOBandwidth, nil
	case "iops":
		return restune.IOOperations, nil
	case "memory", "mem":
		return restune.Memory, nil
	}
	return 0, fmt.Errorf("unknown resource %q", name)
}

func pickSpace(name string, res restune.Resource) (*restune.Space, error) {
	if name == "" {
		switch res {
		case restune.Memory:
			return restune.MemoryKnobs(), nil
		case restune.IOBandwidth, restune.IOOperations:
			return restune.IOKnobs(), nil
		default:
			return restune.CPUKnobs(), nil
		}
	}
	switch strings.ToLower(name) {
	case "cpu":
		return restune.CPUKnobs(), nil
	case "memory", "mem":
		return restune.MemoryKnobs(), nil
	case "io":
		return restune.IOKnobs(), nil
	case "case-study":
		return restune.MySQLKnobs().Subset(
			"innodb_thread_concurrency", "innodb_spin_wait_delay", "innodb_lru_scan_depth"), nil
	}
	return nil, fmt.Errorf("unknown knob set %q", name)
}

// pickTuner builds the selected method. The returned cleanup (possibly nil)
// must be deferred past the session: with -shortlist the lazily-opened
// repository file backs on-demand history reads for the whole run.
func pickTuner(method string, seed int64, shortlist int, repoPath string, space *restune.Space, w restune.Workload, converge, engine bool, rec restune.Recorder) (restune.Tuner, func() error, error) {
	switch strings.ToLower(method) {
	case "restune":
		cfg := restune.DefaultConfig(seed)
		cfg.Recorder = rec
		if converge {
			cfg.ConvergenceWindow = 10
		}
		if engine {
			// Real measurements at short windows are noisy; widen the SLA
			// tolerance and shorten initialization accordingly.
			cfg.SLATolerance = 0.30
			cfg.InitIters = 6
		}
		var cleanup func() error
		if repoPath != "" {
			ch, err := restune.NewCharacterizer(restune.Workloads(), seed)
			if err != nil {
				return nil, nil, err
			}
			cfg.TargetMetaFeature = ch.MetaFeature(w, 3000, rngFor(seed))
			if shortlist > 0 {
				lazy, err := restune.OpenLazyRepository(repoPath)
				if err != nil {
					return nil, nil, err
				}
				corpus, err := lazy.Corpus(space, seed, nil,
					restune.CorpusOptions{ShortlistK: shortlist, Recorder: rec})
				if err != nil {
					lazy.Close()
					return nil, nil, err
				}
				cfg.Corpus = corpus
				cleanup = lazy.Close
				fmt.Printf("opened %s lazily: %d tasks, shortlisting top %d per iteration\n",
					repoPath, lazy.Len(), shortlist)
			} else {
				r, err := restune.LoadRepository(repoPath)
				if err != nil {
					return nil, nil, err
				}
				base, err := r.BaseLearners(space, seed, nil)
				if err != nil {
					return nil, nil, err
				}
				cfg.Base = base
				fmt.Printf("loaded %d base-learners from %s\n", len(base), repoPath)
			}
		}
		return restune.New(cfg), cleanup, nil
	case "ituned":
		return restune.ITuned(seed), nil, nil
	case "ottertune":
		var tasks []restune.TaskRecord
		if repoPath != "" {
			r, err := restune.LoadRepository(repoPath)
			if err != nil {
				return nil, nil, err
			}
			tasks = r.Tasks
		}
		return restune.OtterTuneWithConstraints(seed, tasks), nil, nil
	case "cdbtune":
		return restune.CDBTuneWithConstraints(seed), nil, nil
	case "grid":
		return restune.GridSearch(8), nil, nil
	case "default":
		return restune.Default(), nil, nil
	}
	return nil, nil, fmt.Errorf("unknown method %q", method)
}

func rngFor(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func fmtRes(res restune.Resource, v float64) string {
	switch res {
	case restune.CPU:
		return fmt.Sprintf("%.1f%%", v)
	case restune.IOBandwidth:
		return fmt.Sprintf("%.1fMB/s", v/1e6)
	case restune.IOOperations:
		return fmt.Sprintf("%.0fop/s", v)
	case restune.Memory:
		return fmt.Sprintf("%.2fGB", v/1e9)
	}
	return fmt.Sprintf("%v", v)
}
