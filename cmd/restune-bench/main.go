// Command restune-bench regenerates the paper's tables and figures from
// this reproduction. Each experiment id matches the paper artifact (fig1,
// fig3-fig9, table3-table9); -all runs the whole evaluation section.
//
// Examples:
//
//	restune-bench -list
//	restune-bench -id fig3
//	restune-bench -id table4 -full
//	restune-bench -all -iters 40 > results.txt
//	restune-bench -corpus-size 34,100,1000 -corpus-seed 1
//	restune-bench -history-size 256,1000,2000
//	restune-bench -timeline diurnal -iters 48
//	restune-bench -timeline sched.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/restune"
)

func main() {
	var (
		id        = flag.String("id", "", "experiment id (see -list)")
		all       = flag.Bool("all", false, "run every experiment")
		list      = flag.Bool("list", false, "list experiment ids")
		full      = flag.Bool("full", false, "use the paper's full protocol (200 iterations, 3 runs, 34-task repository)")
		iters     = flag.Int("iters", 0, "override tuning iterations per session")
		seed      = flag.Int64("seed", 1, "random seed")
		csvDir    = flag.String("csv", "", "also write each experiment's numeric series as CSV into this directory")
		tracePath = flag.String("trace", "", "write a JSONL telemetry trace of every tuning session to this file")
		debugAddr = flag.String("debug-addr", "", "serve expvar/metrics/pprof on this address (e.g. localhost:6060) while experiments run")

		corpusSize = flag.String("corpus-size", "", "run the corpus-scaling measurement over these synthetic corpus sizes (comma-separated, e.g. 34,100,1000) instead of a paper experiment")
		corpusSeed = flag.Int64("corpus-seed", 1, "seed for the deterministic synthetic corpus (-corpus-size)")

		historySize = flag.String("history-size", "", "run the long-history model-update comparison (exact vs sparse GP inference) at these observation counts (comma-separated, e.g. 256,1000,2000) instead of a paper experiment")

		timeline = flag.String("timeline", "", "run the simulated-day drift comparison (drift-aware vs stationary tuning) over this timeline: a profile name (diurnal, spike, ramp, flat), \"all\", or a CSV load file of offset_seconds,rate_mult[,write_boost] rows")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "restune-bench: unexpected arguments: %s\n", strings.Join(flag.Args(), " "))
		os.Exit(2)
	}
	if *iters < 0 {
		fmt.Fprintf(os.Stderr, "restune-bench: -iters must not be negative (got %d)\n", *iters)
		os.Exit(2)
	}
	if *all && *id != "" {
		fmt.Fprintln(os.Stderr, "restune-bench: -all and -id are mutually exclusive")
		os.Exit(2)
	}
	if *corpusSize != "" && (*all || *id != "") {
		fmt.Fprintln(os.Stderr, "restune-bench: -corpus-size is mutually exclusive with -id/-all")
		os.Exit(2)
	}
	if *historySize != "" && (*all || *id != "" || *corpusSize != "") {
		fmt.Fprintln(os.Stderr, "restune-bench: -history-size is mutually exclusive with -id/-all/-corpus-size")
		os.Exit(2)
	}
	if *timeline != "" && (*all || *id != "" || *corpusSize != "" || *historySize != "") {
		fmt.Fprintln(os.Stderr, "restune-bench: -timeline is mutually exclusive with -id/-all/-corpus-size/-history-size")
		os.Exit(2)
	}

	if *list {
		for _, eid := range restune.ExperimentIDs() {
			fmt.Printf("%-8s %s\n", eid, restune.ExperimentTitle(eid))
		}
		return
	}

	if *corpusSize != "" {
		sizes, err := parseSizes(*corpusSize)
		if err != nil {
			fmt.Fprintln(os.Stderr, "restune-bench:", err)
			os.Exit(2)
		}
		start := time.Now()
		rep, err := restune.CorpusScale(sizes, *corpusSeed, *iters)
		if err != nil {
			fmt.Fprintln(os.Stderr, "restune-bench:", err)
			os.Exit(1)
		}
		fmt.Print(rep.String())
		if *csvDir != "" {
			path, err := writeCSV(*csvDir, rep)
			if err != nil {
				fmt.Fprintln(os.Stderr, "restune-bench: writing CSV:", err)
				os.Exit(1)
			}
			fmt.Printf("(series written to %s)\n", path)
		}
		fmt.Printf("(corpus scaling completed in %s)\n", time.Since(start).Round(time.Millisecond))
		return
	}

	if *historySize != "" {
		sizes, err := parseSizesFlag("-history-size", *historySize)
		if err != nil {
			fmt.Fprintln(os.Stderr, "restune-bench:", err)
			os.Exit(2)
		}
		start := time.Now()
		rep, err := restune.HistoryScale(sizes, *seed, *iters)
		if err != nil {
			fmt.Fprintln(os.Stderr, "restune-bench:", err)
			os.Exit(1)
		}
		fmt.Print(rep.String())
		if *csvDir != "" {
			path, err := writeCSV(*csvDir, rep)
			if err != nil {
				fmt.Fprintln(os.Stderr, "restune-bench: writing CSV:", err)
				os.Exit(1)
			}
			fmt.Printf("(series written to %s)\n", path)
		}
		fmt.Printf("(history scaling completed in %s)\n", time.Since(start).Round(time.Millisecond))
		return
	}

	p := restune.QuickExperimentParams()
	if *full {
		p = restune.FullExperimentParams()
	}
	p.Seed = *seed
	if *iters > 0 {
		p.Iters = *iters
	}

	// Telemetry: every session in every experiment feeds the same recorder,
	// so the debug endpoint and trace aggregate across the run.
	var trace *restune.TraceRecorder
	if *tracePath != "" {
		t, err := restune.NewTraceFile(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "restune-bench:", err)
			os.Exit(1)
		}
		trace = t
	} else if *debugAddr != "" {
		trace = restune.NewTraceRecorder(io.Discard)
	}
	if trace != nil {
		p.Recorder = trace
	}
	// die closes the trace (flushing what was recorded so far) before
	// exiting, so a failed run still leaves a usable artifact.
	die := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "restune-bench: "+format+"\n", args...)
		if trace != nil {
			trace.Close()
		}
		os.Exit(1)
	}
	if *debugAddr != "" {
		bound, shutdown, err := restune.ServeDebug(*debugAddr, trace)
		if err != nil {
			die("starting debug server: %v", err)
		}
		defer shutdown()
		fmt.Printf("debug endpoint: http://%s/debug/vars (metrics at /debug/metrics, pprof at /debug/pprof/)\n", bound)
	}

	if *timeline != "" {
		start := time.Now()
		if err := runTimeline(*timeline, p); err != nil {
			die("-timeline %s: %v", *timeline, err)
		}
		fmt.Printf("(simulated day completed in %s)\n", time.Since(start).Round(time.Millisecond))
		if trace != nil {
			if err := trace.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "restune-bench: writing trace %s: %v\n", *tracePath, err)
				os.Exit(1)
			}
		}
		return
	}

	ids := []string{*id}
	if *all {
		ids = restune.ExperimentIDs()
	} else if *id == "" {
		fmt.Fprintln(os.Stderr, "restune-bench: pass -id <experiment>, -all, -list, -timeline, -corpus-size or -history-size")
		os.Exit(2)
	}

	for _, eid := range ids {
		start := time.Now()
		rep, err := restune.RunExperiment(eid, p)
		if err != nil {
			die("%s: %v", eid, err)
		}
		fmt.Print(rep.String())
		if *csvDir != "" {
			path, err := writeCSV(*csvDir, rep)
			if err != nil {
				die("writing CSV: %v", err)
			}
			fmt.Printf("(series written to %s)\n", path)
		}
		fmt.Printf("(%s completed in %s)\n\n", eid, time.Since(start).Round(time.Millisecond))
	}
	if trace != nil {
		if err := trace.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "restune-bench: writing trace %s: %v\n", *tracePath, err)
			os.Exit(1)
		}
	}
}

// runTimeline runs the -timeline simulated-day comparison: the drift-aware
// tuner against the paired stationary baseline over each selected timeline,
// reporting post-warmup SLA violations, drift events and adaptation speed.
// arg is a built-in profile name, "all" for every profile, or the path of a
// CSV load file (offset_seconds,rate_mult[,write_boost] rows).
func runTimeline(arg string, p restune.ExperimentParams) error {
	type day struct {
		name string
		run  func(aware bool) (*restune.DayStats, error)
	}
	var days []day
	switch arg {
	case "all":
		for _, profile := range []string{"diurnal", "spike", "ramp", "flat"} {
			profile := profile
			days = append(days, day{profile, func(aware bool) (*restune.DayStats, error) {
				return restune.SimulatedDay(profile, p, aware)
			}})
		}
	case "diurnal", "spike", "ramp", "flat":
		days = append(days, day{arg, func(aware bool) (*restune.DayStats, error) {
			return restune.SimulatedDay(arg, p, aware)
		}})
	default:
		f, err := os.Open(arg)
		if err != nil {
			return fmt.Errorf("not a built-in profile (diurnal, spike, ramp, flat, all) and unreadable as a CSV load file: %v", err)
		}
		tl, err := restune.TimelineFromCSV(f)
		f.Close()
		if err != nil {
			return err
		}
		name := filepath.Base(arg)
		days = append(days, day{name, func(aware bool) (*restune.DayStats, error) {
			return restune.SimulatedDayTimeline(name, tl, p, aware)
		}})
	}
	fmt.Printf("Simulated 24h day compressed into %d measurements (Twitter, 3 knobs, instance A):\n", p.Iters)
	fmt.Printf("%-12s %-20s %12s %12s %10s %10s %10s\n",
		"Timeline", "Method", "Violations", "DriftEvents", "AdaptMax", "AdaptMean", "Improve%")
	for _, d := range days {
		for _, aware := range []bool{true, false} {
			st, err := d.run(aware)
			if err != nil {
				return err
			}
			fmt.Printf("%-12s %-20s %12d %12d %10d %10.1f %10.1f\n",
				st.Profile, st.Method, st.Violations, st.DriftEvents, st.AdaptMax, st.AdaptMean, st.Improvement)
		}
	}
	return nil
}

// parseSizes parses the -corpus-size list ("34,100,1000") into sizes.
func parseSizes(s string) ([]int, error) {
	return parseSizesFlag("-corpus-size", s)
}

// parseSizesFlag parses a comma-separated positive size list for the named
// flag (-corpus-size, -history-size).
func parseSizesFlag(name, s string) ([]int, error) {
	parts := strings.Split(s, ",")
	sizes := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("%s: %q is not a positive size", name, p)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

// writeCSV dumps an experiment's series, one row per series, as
// name,v0,v1,... — the format is deliberately trivial to plot.
func writeCSV(dir string, rep *restune.ExperimentReport) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	names := make([]string, 0, len(rep.Series))
	for name := range rep.Series {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		b.WriteString(strings.ReplaceAll(name, ",", ";"))
		for _, v := range rep.Series[name] {
			fmt.Fprintf(&b, ",%g", v)
		}
		b.WriteByte('\n')
	}
	path := filepath.Join(dir, rep.ID+".csv")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
