// Command restune-bench regenerates the paper's tables and figures from
// this reproduction. Each experiment id matches the paper artifact (fig1,
// fig3-fig9, table3-table9); -all runs the whole evaluation section.
//
// Examples:
//
//	restune-bench -list
//	restune-bench -id fig3
//	restune-bench -id table4 -full
//	restune-bench -all -iters 40 > results.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/restune"
)

func main() {
	var (
		id     = flag.String("id", "", "experiment id (see -list)")
		all    = flag.Bool("all", false, "run every experiment")
		list   = flag.Bool("list", false, "list experiment ids")
		full   = flag.Bool("full", false, "use the paper's full protocol (200 iterations, 3 runs, 34-task repository)")
		iters  = flag.Int("iters", 0, "override tuning iterations per session")
		seed   = flag.Int64("seed", 1, "random seed")
		csvDir = flag.String("csv", "", "also write each experiment's numeric series as CSV into this directory")
	)
	flag.Parse()

	if *list {
		for _, eid := range restune.ExperimentIDs() {
			fmt.Printf("%-8s %s\n", eid, restune.ExperimentTitle(eid))
		}
		return
	}

	p := restune.QuickExperimentParams()
	if *full {
		p = restune.FullExperimentParams()
	}
	p.Seed = *seed
	if *iters > 0 {
		p.Iters = *iters
	}

	ids := []string{*id}
	if *all {
		ids = restune.ExperimentIDs()
	} else if *id == "" {
		fmt.Fprintln(os.Stderr, "restune-bench: pass -id <experiment>, -all or -list")
		os.Exit(2)
	}

	for _, eid := range ids {
		start := time.Now()
		rep, err := restune.RunExperiment(eid, p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "restune-bench: %s: %v\n", eid, err)
			os.Exit(1)
		}
		fmt.Print(rep.String())
		if *csvDir != "" {
			path, err := writeCSV(*csvDir, rep)
			if err != nil {
				fmt.Fprintf(os.Stderr, "restune-bench: writing CSV: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("(series written to %s)\n", path)
		}
		fmt.Printf("(%s completed in %s)\n\n", eid, time.Since(start).Round(time.Millisecond))
	}
}

// writeCSV dumps an experiment's series, one row per series, as
// name,v0,v1,... — the format is deliberately trivial to plot.
func writeCSV(dir string, rep *restune.ExperimentReport) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	names := make([]string, 0, len(rep.Series))
	for name := range rep.Series {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		b.WriteString(strings.ReplaceAll(name, ",", ";"))
		for _, v := range rep.Series[name] {
			fmt.Fprintf(&b, ",%g", v)
		}
		b.WriteByte('\n')
	}
	path := filepath.Join(dir, rep.ID+".csv")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
