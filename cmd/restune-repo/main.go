// Command restune-repo builds and inspects the ResTune data repository:
// tuning histories collected by running past tuning tasks (the repository
// workloads on instances A and B — 34 tasks at the paper's full scale),
// each with its workload meta-feature, persisted as JSON for later
// meta-boosted sessions.
//
// Examples:
//
//	restune-repo -out repo.json -iters 60               # build (full: 34 tasks)
//	restune-repo -out repo.json -iters 24 -limit 6      # quicker, 12 tasks
//	restune-repo -inspect repo.json                     # summarize an existing repository
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dbsim"
	"repro/internal/experiments"
	"repro/internal/knobs"
	"repro/restune"
)

func main() {
	var (
		out     = flag.String("out", "repo.json", "output path for the repository JSON")
		iters   = flag.Int("iters", 40, "tuning iterations per repository task")
		limit   = flag.Int("limit", 0, "cap the number of distinct workloads (0 = all 17)")
		seed    = flag.Int64("seed", 1, "random seed")
		space   = flag.String("space", "cpu", "knob space the histories cover: cpu, memory, io")
		inspect = flag.String("inspect", "", "summarize an existing repository instead of building")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "restune-repo: unexpected arguments: %s\n", strings.Join(flag.Args(), " "))
		os.Exit(2)
	}
	if *iters <= 0 {
		fmt.Fprintf(os.Stderr, "restune-repo: -iters must be positive (got %d)\n", *iters)
		os.Exit(2)
	}
	if *limit < 0 {
		fmt.Fprintf(os.Stderr, "restune-repo: -limit must not be negative (got %d)\n", *limit)
		os.Exit(2)
	}
	if err := run(*out, *iters, *limit, *seed, *space, *inspect); err != nil {
		fmt.Fprintln(os.Stderr, "restune-repo:", err)
		os.Exit(1)
	}
}

func run(out string, iters, limit int, seed int64, spaceName, inspect string) error {
	if inspect != "" {
		return inspectRepo(inspect)
	}

	var space *knobs.Space
	var resource dbsim.ResourceKind
	halfRAM := true
	switch spaceName {
	case "cpu":
		space, resource = knobs.CPUSpace(), dbsim.CPUPct
	case "memory":
		space, resource, halfRAM = knobs.MemorySpace(), dbsim.MemoryBytes, false
	case "io":
		space, resource = knobs.IOSpace(), dbsim.IOPS
	default:
		return fmt.Errorf("unknown space %q (cpu, memory, io)", spaceName)
	}

	p := experiments.Quick()
	p.Seed = seed
	p.RepoIters = iters
	p.RepoWorkloadLimit = limit

	nWorkloads := len(experiments.RepoWorkloads())
	if limit > 0 && limit < nWorkloads {
		nWorkloads = limit
	}
	fmt.Printf("building %s repository: %d workloads x 2 instances (A, B), %d iterations each\n",
		spaceName, nWorkloads, iters)
	r, err := experiments.BuildRepository(space, resource, p, halfRAM)
	if err != nil {
		return err
	}
	if err := r.Save(out); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d tasks, %d observations\n", out, len(r.Tasks), r.Observations())
	return nil
}

func inspectRepo(path string) error {
	r, err := restune.LoadRepository(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d tasks, %d observations\n\n", path, len(r.Tasks), r.Observations())
	fmt.Printf("%-28s %-10s %6s %14s\n", "Task", "Hardware", "Obs", "KnobSpace")
	for _, t := range r.Tasks {
		fmt.Printf("%-28s %-10s %6d %10d knobs\n", t.TaskID, t.Hardware, len(t.Observations), len(t.KnobNames))
	}
	return nil
}
