// Command restune-server runs a fleet of concurrent tuning sessions over a
// bounded worker pool — the process shape of ResTune's cloud deployment,
// where one tuning service drives many database instances at once. All
// sessions share one copy-on-write meta-corpus: base-task surrogate fits are
// computed once (single-flight) and reused by every session, so N sessions
// over similar workloads pay ~1 fit per base task instead of N.
//
// Telemetry is the dashboard: -trace-dir writes one JSONL stream per session
// plus a fleet-level stream carrying the shared-fit cache counters, and
// -debug-addr serves live expvar/metrics/pprof for the duration of the run.
//
// Examples:
//
//	restune-server -sessions 8 -workers 4 -workload twitter,tpcc -iters 30
//	restune-server -sessions 4 -repo repo.json -shortlist 16 -trace-dir traces/
//	restune-server -sessions 2 -synthetic-corpus 12 -iters 5 -debug-addr localhost:6060
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/restune"
)

func main() {
	var (
		sessions  = flag.Int("sessions", 4, "number of concurrent tuning sessions")
		workers   = flag.Int("workers", 0, "worker-pool size bounding concurrent session steps (0 = GOMAXPROCS)")
		workloads = flag.String("workload", "twitter", "comma-separated workload list cycled across sessions: sysbench, tpcc, twitter, hotel, sales, twitter-w1..w5")
		instance  = flag.String("instance", "A", "instance type A-F (paper Table 1)")
		resource  = flag.String("resource", "cpu", "resource to minimize: cpu, io_bps, iops, memory")
		iters     = flag.Int("iters", 30, "tuning iterations per session")
		seed      = flag.Int64("seed", 1, "base seed; session i runs at seed+i")
		repoPath  = flag.String("repo", "", "repository JSON backing the shared meta-corpus (opened lazily)")
		shortlist = flag.Int("shortlist", 0, "shortlist the top-K base tasks per session (0 = exact path over the whole corpus)")
		synthetic = flag.Int("synthetic-corpus", 0, "instead of -repo: share a synthetic corpus of this many base tasks")
		traceDir  = flag.String("trace-dir", "", "write one JSONL trace per session plus fleet.jsonl into this directory")
		debugAddr = flag.String("debug-addr", "", "serve expvar/metrics/pprof on this address (e.g. localhost:6060) for the duration of the run")
		verbose   = flag.Bool("v", false, "print per-session iteration counts as results land")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "restune-server: unexpected arguments: %s\n", strings.Join(flag.Args(), " "))
		os.Exit(2)
	}
	if *sessions <= 0 || *iters <= 0 {
		fmt.Fprintf(os.Stderr, "restune-server: -sessions and -iters must be positive\n")
		os.Exit(2)
	}
	if *shortlist < 0 || *synthetic < 0 || *workers < 0 {
		fmt.Fprintf(os.Stderr, "restune-server: -shortlist, -synthetic-corpus and -workers must not be negative\n")
		os.Exit(2)
	}
	if *repoPath != "" && *synthetic > 0 {
		fmt.Fprintf(os.Stderr, "restune-server: -repo and -synthetic-corpus are mutually exclusive\n")
		os.Exit(2)
	}
	if err := run(*sessions, *workers, *iters, *shortlist, *synthetic, *seed,
		*workloads, *instance, *resource, *repoPath, *traceDir, *debugAddr, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "restune-server:", err)
		os.Exit(1)
	}
}

func run(sessions, workers, iters, shortlist, synthetic int, seed int64,
	workloads, instance, resource, repoPath, traceDir, debugAddr string, verbose bool) (retErr error) {
	res, err := pickResource(resource)
	if err != nil {
		return err
	}
	ws, err := pickWorkloads(workloads)
	if err != nil {
		return err
	}
	space := restune.CPUKnobs()
	if res == restune.Memory {
		space = restune.MemoryKnobs()
	} else if res == restune.IOBandwidth || res == restune.IOOperations {
		space = restune.IOKnobs()
	}

	if traceDir != "" {
		if err := os.MkdirAll(traceDir, 0o755); err != nil {
			return err
		}
	}

	// Fleet-level telemetry: scheduler gauges plus the shared-fit cache
	// counters land here; each session gets its own stream below.
	fleetRec := restune.NopRecorder()
	var fleetTrace *restune.TraceRecorder
	if traceDir != "" {
		fleetTrace, err = restune.NewTraceFile(filepath.Join(traceDir, "fleet.jsonl"))
		if err != nil {
			return err
		}
		fleetRec = fleetTrace
	} else if debugAddr != "" {
		fleetTrace = restune.NewTraceRecorder(io.Discard)
		fleetRec = fleetTrace
	}
	if fleetTrace != nil {
		defer func() {
			if err := fleetTrace.Close(); err != nil && retErr == nil {
				retErr = fmt.Errorf("writing fleet trace: %w", err)
			}
		}()
	}
	if debugAddr != "" {
		bound, shutdown, err := restune.ServeDebug(debugAddr, fleetTrace)
		if err != nil {
			return fmt.Errorf("starting debug server: %w", err)
		}
		defer shutdown()
		fmt.Printf("debug endpoint: http://%s/debug/vars (metrics at /debug/metrics, pprof at /debug/pprof/)\n", bound)
	}

	// The shared copy-on-write corpus, when meta-learning is on.
	var shared *restune.SharedCorpus
	var targetMeta func(w restune.Workload, s int64) []float64
	switch {
	case repoPath != "":
		lazy, err := restune.OpenLazyRepository(repoPath)
		if err != nil {
			return err
		}
		defer lazy.Close()
		tasks, err := lazy.CorpusTasks(space, seed, nil)
		if err != nil {
			return err
		}
		shared = restune.NewSharedCorpus(tasks, fleetRec)
		ch, err := restune.NewCharacterizer(restune.Workloads(), seed)
		if err != nil {
			return err
		}
		targetMeta = func(w restune.Workload, s int64) []float64 {
			return ch.MetaFeature(w, 3000, rand.New(rand.NewSource(s)))
		}
		fmt.Printf("shared corpus: %d tasks from %s (lazy)\n", shared.Len(), repoPath)
	case synthetic > 0:
		const metaDim = 5
		tasks := restune.SyntheticCorpus(synthetic, metaDim, space.Dim(), 10, seed)
		shared = restune.NewSharedCorpus(tasks, fleetRec)
		targetMeta = func(w restune.Workload, s int64) []float64 {
			r := rand.New(rand.NewSource(s))
			mf := make([]float64, metaDim)
			for d := range mf {
				mf[d] = r.Float64()
			}
			return mf
		}
		fmt.Printf("shared corpus: %d synthetic tasks\n", shared.Len())
	}

	specs := make([]restune.SessionSpec, sessions)
	recs := make([]*restune.TraceRecorder, sessions)
	for i := 0; i < sessions; i++ {
		w := ws[i%len(ws)]
		sSeed := seed + int64(i)
		name := fmt.Sprintf("s%02d-%s", i, w.Name)

		rec := restune.NopRecorder()
		if traceDir != "" {
			tr, err := restune.NewTraceFile(filepath.Join(traceDir, "session-"+name+".jsonl"))
			if err != nil {
				return err
			}
			recs[i] = tr
			rec = tr
		}

		cfg := restune.DefaultConfig(sSeed)
		cfg.Recorder = rec
		if shared != nil {
			cfg.TargetMetaFeature = targetMeta(w, sSeed)
			cfg.Corpus = shared.NewSession(restune.CorpusOptions{ShortlistK: shortlist, Recorder: rec})
		}

		var opts []restune.SimulatorOption
		if res == restune.CPU || res == restune.IOBandwidth || res == restune.IOOperations {
			opts = append(opts, restune.WithHalfRAMBufferPool())
		}
		sim := restune.NewSimulator(restune.Instance(instance), w.Profile, sSeed, opts...)
		specs[i] = restune.SessionSpec{
			Name:      name,
			Config:    cfg,
			Evaluator: restune.NewEvaluator(sim, space, res),
			Iters:     iters,
		}
	}
	defer func() {
		for _, tr := range recs {
			if tr == nil {
				continue
			}
			if err := tr.Close(); err != nil && retErr == nil {
				retErr = fmt.Errorf("writing session trace: %w", err)
			}
		}
	}()

	fleet := restune.NewFleet(restune.FleetConfig{Workers: workers, Recorder: fleetRec})
	fmt.Printf("fleet: %d sessions x %d iterations over %d workers, minimizing %s on instance %s\n",
		sessions, iters, fleet.Workers(), res, instance)

	t0 := time.Now()
	results := fleet.Run(specs)
	elapsed := time.Since(t0)

	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
			fmt.Printf("  %-24s FAILED: %v\n", r.Name, r.Err)
			continue
		}
		line := fmt.Sprintf("  %-24s %3d iters", r.Name, len(r.Result.Iterations)-1)
		if best, ok := r.Result.BestFeasible(); ok {
			line += fmt.Sprintf("  best %s %.4g (%.1f%% below default)",
				res, best.Res, r.Result.ImprovementPct())
		} else {
			line += "  no feasible config beyond default"
		}
		if r.Result.Converged {
			line += ", converged"
		}
		if verbose || r.Err != nil {
			fmt.Println(line)
		}
	}
	if !verbose {
		fmt.Printf("  %d/%d sessions completed\n", len(results)-failed, len(results))
	}

	fmt.Printf("fleet finished in %.2fs (%.2f sessions/sec)\n",
		elapsed.Seconds(), float64(sessions-failed)/elapsed.Seconds())
	if shared != nil {
		hits, misses := shared.Stats()
		fmt.Printf("shared-fit cache: %d hits / %d misses (%.1f%% hit rate)\n",
			hits, misses, 100*shared.HitRate())
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d sessions failed", failed, len(results))
	}
	return nil
}

func pickWorkloads(list string) ([]restune.Workload, error) {
	var ws []restune.Workload
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		w, err := pickWorkload(name)
		if err != nil {
			return nil, err
		}
		ws = append(ws, w)
	}
	if len(ws) == 0 {
		return nil, fmt.Errorf("no workloads in %q", list)
	}
	return ws, nil
}

func pickWorkload(name string) (restune.Workload, error) {
	switch strings.ToLower(name) {
	case "sysbench":
		return restune.Sysbench(10), nil
	case "tpcc":
		return restune.TPCC(200), nil
	case "twitter":
		return restune.Twitter(), nil
	case "hotel":
		return restune.Hotel(), nil
	case "sales":
		return restune.Sales(), nil
	}
	for i := 1; i <= 5; i++ {
		if strings.EqualFold(name, fmt.Sprintf("twitter-w%d", i)) {
			return restune.TwitterVariant(i), nil
		}
	}
	return restune.Workload{}, fmt.Errorf("unknown workload %q", name)
}

func pickResource(name string) (restune.Resource, error) {
	switch strings.ToLower(name) {
	case "cpu":
		return restune.CPU, nil
	case "io_bps", "bps":
		return restune.IOBandwidth, nil
	case "iops":
		return restune.IOOperations, nil
	case "memory", "mem":
		return restune.Memory, nil
	}
	return 0, fmt.Errorf("unknown resource %q", name)
}
