// SLA-aware memory tuning: shrink the DBMS memory footprint (buffer pool,
// per-connection buffers, log buffer) on a 64GB instance while the SLA
// derived from the default configuration keeps holding — and contrast it
// with iTuned, which minimizes the resource without constraints and is
// willing to wreck throughput to get there (paper Sections 7.1 and 7.5.2).
//
//	go run ./examples/sla-aware-memory
package main

import (
	"fmt"
	"log"

	"repro/restune"
)

func main() {
	w := restune.Sysbench(30) // 30GB of data
	newEv := func(seed int64) restune.Evaluator {
		sim := restune.NewSimulator(restune.Instance("E"), w.Profile, seed)
		return restune.NewEvaluator(sim, restune.MemoryKnobs(), restune.Memory)
	}

	fmt.Printf("minimizing DBMS memory for %s on instance E (32 cores, 64GB RAM)\n", w.Name)
	fmt.Printf("tuned knobs: ")
	for i, k := range restune.MemoryKnobs().Knobs() {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(k.Name)
	}
	fmt.Println()

	restuneRes, err := restune.New(restune.DefaultConfig(11)).Run(newEv(11), 50)
	if err != nil {
		log.Fatal(err)
	}
	itunedRes, err := restune.ITuned(11).Run(newEv(12), 50)
	if err != nil {
		log.Fatal(err)
	}

	def := restuneRes.Iterations[0].Observation
	fmt.Printf("\ndefault: %.2f GB memory, %.0f txn/s, p99 %.1f ms\n",
		def.Res/1e9, def.Tps, def.Lat)
	fmt.Printf("SLA: throughput >= %.0f txn/s, p99 latency <= %.1f ms\n\n",
		restuneRes.SLA.LambdaTps, restuneRes.SLA.LambdaLat)

	best, ok := restuneRes.BestFeasible()
	if !ok {
		log.Fatal("ResTune found no feasible configuration")
	}
	space := restune.MemoryKnobs()
	fmt.Printf("ResTune best feasible: %.2f GB (-%.1f%%), tps %.0f, p99 %.1f ms — SLA held\n",
		best.Res/1e9, restuneRes.ImprovementPct(), best.Tps, best.Lat)
	fmt.Printf("  %s\n\n", space.Describe(space.Denormalize(best.Theta)))

	// iTuned's lowest-memory pick, feasible or not.
	lowest := itunedRes.Iterations[0]
	for _, it := range itunedRes.Iterations {
		if it.Observation.Res < lowest.Observation.Res {
			lowest = it
		}
	}
	verdict := "violates the SLA"
	if lowest.Feasible {
		verdict = "happens to satisfy the SLA"
	}
	fmt.Printf("iTuned lowest-memory pick: %.2f GB, tps %.0f, p99 %.1f ms — %s\n",
		lowest.Observation.Res/1e9, lowest.Observation.Tps, lowest.Observation.Lat, verdict)
	fmt.Println("\nunconstrained minimization drives the buffer pool toward its floor;")
	fmt.Println("ResTune's constrained acquisition (CEI) only credits configurations that")
	fmt.Println("are predicted to keep throughput and latency at default-config levels.")
}
