// Real engine: the same ResTune tuning loop, but every measurement is a
// real replay against minidb — the repository's compact storage engine
// (B+tree, buffer pool with LRU page cleaner, WAL, row locks, table cache).
// Throughput is counted from executed statements, p99 latency from wall
// clocks, CPU from getrusage, and IO from the engine's physical counters.
//
// The session minimizes IO operations per second while holding the SLA
// captured from the engine's default configuration — watch
// innodb_flush_log_at_trx_commit and the buffer pool move.
//
//	go run ./examples/real-engine
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/restune"
)

func main() {
	dir, err := os.MkdirTemp("", "restune-real-engine")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Tune the knobs the engine genuinely implements.
	space := restune.MySQLKnobs().Subset(
		"innodb_buffer_pool_size",
		"innodb_flush_log_at_trx_commit",
		"innodb_thread_concurrency",
		"innodb_lru_scan_depth",
		"table_open_cache",
	)
	w := restune.Sysbench(10).WithRequestRate(1200)

	ev := restune.NewEngineEvaluator(dir, space, restune.IOOperations, w, 7)
	ev.Rows = 1500
	ev.Duration = 250 * time.Millisecond
	ev.Workers = 6

	fmt.Println("measuring the DBA default configuration on the real engine ...")
	cfg := restune.DefaultConfig(7)
	cfg.InitIters = 6
	cfg.SLATolerance = 0.30 // short real windows are noisy
	cfg.Acq = restune.AcquisitionConfig{RandomCandidates: 48, LocalStarts: 2, LocalSteps: 6, StepScale: 0.15}

	const iters = 14
	res, err := restune.New(cfg).Run(ev, iters)
	if err != nil {
		log.Fatal(err)
	}

	def := res.Iterations[0]
	fmt.Printf("\nSLA from default: throughput >= %.0f stmt/s, p99 <= %.2f ms\n",
		res.SLA.LambdaTps, res.SLA.LambdaLat)
	fmt.Printf("default: %.0f IOPS, %.0f stmt/s, hit ratio %.3f\n\n",
		def.Observation.Res, def.Observation.Tps, def.Measurement.HitRatio)

	fmt.Printf("%-5s %-8s %10s %10s %10s  %s\n", "iter", "phase", "IOPS", "stmt/s", "p99(ms)", "feasible")
	for _, it := range res.Iterations[1:] {
		feas := ""
		if it.Feasible {
			feas = "*"
		}
		fmt.Printf("%-5d %-8s %10.0f %10.0f %10.2f  %s\n",
			it.Index, it.Phase, it.Observation.Res, it.Observation.Tps, it.Observation.Lat, feas)
	}

	best, ok := res.BestFeasible()
	if !ok {
		fmt.Println("\nno feasible configuration found beyond the default")
		return
	}
	fmt.Printf("\nbest feasible: %.0f IOPS (%.1f%% below default) with the SLA held\n",
		best.Res, res.ImprovementPct())
	fmt.Printf("knobs: %s\n", space.Describe(space.Denormalize(best.Theta)))
	fmt.Println("\nevery number above came from executing SQL against the storage engine —")
	fmt.Println("the same loop the paper runs against MySQL RDS, at desk scale.")
}
