// Meta-transfer: the paper's central claim, end to end. Tuning histories
// from related workloads (Twitter variants with higher INSERT ratios) are
// collected into a data repository; a new tuning task on the real Twitter
// workload is then boosted by the meta-learner and compared against
// learning from scratch.
//
//	go run ./examples/meta-transfer
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/restune"
)

const (
	historyIters = 30
	targetIters  = 15
	seed         = 7
)

func main() {
	space := restune.MySQLKnobs().Subset(
		"innodb_thread_concurrency", "innodb_spin_wait_delay", "innodb_lru_scan_depth")

	// The workload characterizer embeds each workload's SQL stream as a
	// meta-feature (TF-IDF over reserved words -> random-forest cost
	// classifier -> mean class distribution).
	ch, err := restune.NewCharacterizer(restune.Workloads(), seed)
	if err != nil {
		log.Fatal(err)
	}

	// --- Phase 1: collect history. Past tuning tasks on two variants of
	// the target workload (W1 is similar, W5 much more write-heavy).
	fmt.Println("phase 1: collecting tuning history from Twitter variants W1 and W5 ...")
	repo := restune.NewRepository()
	for _, variant := range []int{1, 5} {
		w := restune.TwitterVariant(variant)
		sim := restune.NewSimulator(restune.Instance("A"), w.Profile, seed+int64(variant),
			restune.WithHalfRAMBufferPool())
		ev := restune.NewEvaluator(sim, space, restune.CPU)
		res, err := restune.New(restune.DefaultConfig(seed+int64(variant))).Run(ev, historyIters)
		if err != nil {
			log.Fatal(err)
		}
		mf := ch.MetaFeature(w, 3000, rand.New(rand.NewSource(seed+int64(variant))))
		repo.Add(restune.TaskFromResult(w.Name, w.Name, "A", mf, space, res))
		fmt.Printf("  %s: %d observations, best feasible CPU %.1f%%\n",
			w.Name, len(res.Iterations), mustBest(res))
	}

	// --- Phase 2: tune the real target with and without the history.
	target := restune.Twitter()
	targetMF := ch.MetaFeature(target, 3000, rand.New(rand.NewSource(seed)))
	newEv := func(s int64) restune.Evaluator {
		sim := restune.NewSimulator(restune.Instance("A"), target.Profile, s,
			restune.WithHalfRAMBufferPool())
		return restune.NewEvaluator(sim, space, restune.CPU)
	}

	base, err := repo.BaseLearners(space, seed, nil)
	if err != nil {
		log.Fatal(err)
	}
	cfgMeta := restune.DefaultConfig(seed)
	cfgMeta.Base = base
	cfgMeta.TargetMetaFeature = targetMF

	fmt.Printf("\nphase 2: tuning %s with a budget of %d iterations\n", target.Name, targetIters)
	metaRes, err := restune.New(cfgMeta).Run(newEv(seed), targetIters)
	if err != nil {
		log.Fatal(err)
	}
	scratchRes, err := restune.New(restune.DefaultConfig(seed)).Run(newEv(seed), targetIters)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %14s %12s\n", "method", "best CPU (%)", "improve (%)")
	for _, r := range []*restune.Result{metaRes, scratchRes} {
		fmt.Printf("%-22s %14.1f %12.1f\n", r.Method, mustBest(r), r.ImprovementPct())
	}

	fmt.Println("\nbest-feasible CPU by iteration (meta-boosted vs scratch):")
	m, s := metaRes.BestFeasibleSeries(), scratchRes.BestFeasibleSeries()
	for i := range m {
		fmt.Printf("  iter %2d: ResTune %6.1f%%   w/o-ML %6.1f%%\n", i, m[i], s[i])
	}
	fmt.Println("\nthe meta-boosted run exploits W1's similar response surface and finds")
	fmt.Println("a strong configuration within the first few iterations (paper Section 7.3).")
}

func mustBest(r *restune.Result) float64 {
	best, ok := r.BestFeasible()
	if !ok {
		return r.Iterations[0].Observation.Res
	}
	return best.Res
}
