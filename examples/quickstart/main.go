// Quickstart: minimize CPU for the Twitter workload on a 48-core instance
// without violating the SLA derived from the DBA default configuration.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/restune"
)

func main() {
	// The workload under tuning and the database instance it runs on
	// (instance A = 48 cores / 12GB, paper Table 1).
	w := restune.Twitter()
	sim := restune.NewSimulator(restune.Instance("A"), w.Profile, 42,
		restune.WithHalfRAMBufferPool())

	// Tune the paper's 14 CPU knobs, minimizing CPU utilization. The SLA
	// (throughput and p99 latency of the default configuration) is captured
	// automatically on the first measurement.
	ev := restune.NewEvaluator(sim, restune.CPUKnobs(), restune.CPU)

	tuner := restune.New(restune.DefaultConfig(42)) // no history: ResTune-w/o-ML
	result, err := tuner.Run(ev, 60)
	if err != nil {
		log.Fatal(err)
	}

	def := result.Iterations[0].Observation
	fmt.Printf("workload: %s on instance A (%d client threads, %.0f txn/s offered)\n",
		w.Name, w.Profile.Threads, w.Profile.RequestRate)
	fmt.Printf("SLA: throughput >= %.0f txn/s, p99 latency <= %.1f ms\n",
		result.SLA.LambdaTps, result.SLA.LambdaLat)
	fmt.Printf("default config: %.1f%% CPU\n\n", def.Res)

	best, ok := result.BestFeasible()
	if !ok {
		log.Fatal("no feasible configuration found")
	}
	space := restune.CPUKnobs()
	fmt.Printf("best feasible config after %d iterations: %.1f%% CPU (%.1f%% reduction)\n",
		len(result.Iterations)-1, best.Res, result.ImprovementPct())
	fmt.Printf("throughput %.0f txn/s, p99 latency %.1f ms — SLA held\n\n", best.Tps, best.Lat)
	fmt.Printf("recommended knobs:\n  %s\n", space.Describe(space.Denormalize(best.Theta)))
}
