// Workload characterization and replay: the client-side machinery of
// ResTune. A recorded SQL stream is reduced to templates (scalars and
// sharded table names re-sampled, so replayed writes do not collide),
// characterized into a meta-feature, and compared against known workloads —
// the signal the meta-learner's static weights are built from
// (paper Sections 4 and 6.2).
//
//	go run ./examples/workload-characterization
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/restune"
)

func main() {
	// Train the characterization pipeline on the benchmark corpus.
	ch, err := restune.NewCharacterizer(restune.Workloads(), 1)
	if err != nil {
		log.Fatal(err)
	}

	// A captured window of the target workload's SQL stream.
	target := restune.Twitter()
	rng := rand.New(rand.NewSource(1))
	stream := target.Generate(4000, rng)
	fmt.Printf("captured %d statements from %s; first three:\n", len(stream), target.Name)
	for _, q := range stream[:3] {
		fmt.Printf("  %s\n", q)
	}

	// Template extraction (the replayer's first step).
	templates := restune.ExtractTemplates(stream)
	fmt.Printf("\nextracted %d templates:\n", len(templates))
	for _, t := range templates {
		fmt.Printf("  %5d x %s\n", t.Count, t.Template)
	}

	// Meta-feature: average predicted resource-cost distribution.
	mf := ch.MetaFeature(target, 4000, rng)
	fmt.Printf("\nmeta-feature (cost-level distribution): ")
	for _, v := range mf {
		fmt.Printf("%.3f ", v)
	}
	fmt.Println()

	// Distance to the other workloads: the similar Twitter variants should
	// be closest, TPC-C farthest.
	fmt.Println("\ndistance from twitter's meta-feature:")
	candidates := []restune.Workload{
		restune.TwitterVariant(1), restune.TwitterVariant(3), restune.TwitterVariant(5),
		restune.Sales(), restune.Hotel(), restune.Sysbench(10), restune.TPCC(200),
	}
	for _, c := range candidates {
		d := restune.MetaFeatureDistance(mf, ch.MetaFeature(c, 4000, rng))
		fmt.Printf("  %-14s %.4f\n", c.Name, d)
	}

	// Replay a window against the database copy at the recorded rate.
	sim := restune.NewSimulator(restune.Instance("A"), target.Profile, 1,
		restune.WithHalfRAMBufferPool())
	rp := restune.NewReplayer(sim, target, 4000, 3*time.Minute, 1)
	res := rp.Replay(nil, nil)
	fmt.Printf("\nreplayed %s for %s at the recorded request rate: %d statements issued\n",
		target.Name, res.SimulatedDuration, res.QueriesIssued)
	fmt.Printf("measured: %.0f txn/s, p99 %.1f ms, CPU %.1f%%\n",
		res.Measurement.TPS, res.Measurement.LatencyP99Ms, res.Measurement.CPUUtilPct)
}
